package mlir_test

// Golden-file tests for the MLIR printer and verifier: real pipeline
// modules — an EKL kernel lowered through every stage and a CFDlang
// program — are printed and compared byte-for-byte against committed
// .mlir goldens. The printer is deterministic (sorted attributes, values
// numbered in creation order), so any drift in op coverage, attribute
// rendering, or lowering shape shows up as a diff. Regenerate with:
//
//	go test ./internal/mlir -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"everest/internal/cfdlang"
	"everest/internal/ekl"
	"everest/internal/mlir"
	"everest/internal/tensor"
)

var update = flag.Bool("update", false, "rewrite the .mlir goldens from current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("output drifted from %s (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, string(want))
	}
}

// goldenKernel covers every ekl-dialect op the variant pipeline emits:
// tensor bindings (input/param/iota kinds), gather (subscripted
// subscript), select, unary, binary, einsum, and output.
func goldenKernel(t *testing.T) (*ekl.Kernel, ekl.Binding) {
	t.Helper()
	src := `kernel golden {
  input a : [4]
  input idx : [4] index
  input m : [4, 4]
  param c = 0.5
  g = m[idx[i], i]
  s = select(a[i] <= c, g[i], -a[i])
  e = exp(s[i])
  y = sum(i) e[i] * a[i]
  output y
}
`
	k, err := ekl.ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4)
	m := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		a.Set(float64(i)/4, i)
		for j := 0; j < 4; j++ {
			m.Set(float64(i*4+j), i, j)
		}
	}
	return k, ekl.Binding{
		Tensors: map[string]*tensor.Tensor{"a": a, "idx": tensor.New(4), "m": m},
	}
}

func TestGoldenEKLLowered(t *testing.T) {
	k, b := goldenKernel(t)
	module, _, err := ekl.Lower(k, b)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ekl_kernel.mlir", module.String())

	// Through the full pipeline: einsum -> esn normalization -> teil loop
	// nests -> affine.for, verifying between passes.
	pm := mlir.NewPassManager().Add(ekl.LowerToESN(), ekl.LowerToTeIL(), ekl.LowerToAffine())
	if err := pm.Run(module); err != nil {
		t.Fatal(err)
	}
	if err := module.Verify(); err != nil {
		t.Fatalf("lowered module does not verify: %v", err)
	}
	checkGolden(t, "ekl_affine.mlir", module.String())
}

func TestGoldenCFDlang(t *testing.T) {
	src := `var input A : [2 3]
var input B : [3 2]
var input D : [2 2]
var output C : [2 2]
C = (A * B) . [[2 3]] + D - D
`
	p, err := cfdlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	module, err := p.EmitModule("golden_cfd")
	if err != nil {
		t.Fatal(err)
	}
	if err := module.Verify(); err != nil {
		t.Fatalf("cfdlang module does not verify: %v", err)
	}
	checkGolden(t, "cfdlang_prog.mlir", module.String())
}
