"builtin.module"() {sym_name = "golden"} ({
  "ekl.kernel"() {sym_name = "golden"} ({
    %a_0 = "ekl.tensor"() {kind = "input", name = "a"} : () -> (tensor<4xf64>)
    %idx_1 = "ekl.tensor"() {kind = "input", name = "idx"} : () -> (tensor<4xindex>)
    %m_2 = "ekl.tensor"() {kind = "input", name = "m"} : () -> (tensor<4x4xf64>)
    %c_3 = "ekl.tensor"() {kind = "param", name = "c"} : () -> (tensor<f64>)
    %g_4 = "ekl.gather"(%m_2, %idx_1) {affine.lowered = true, bounds = [4], indices = ["i0"], pattern = "#1,i", teil.lowered = true} ({
      ^bb0(%iv_5: index):
      %6 = "teil.load"(%m_2) {note = "operand element"} : (tensor<4x4xf64>) -> (f64)
      %7 = "teil.load"(%idx_1) {note = "operand element"} : (tensor<4xindex>) -> (f64)
      %8 = "teil.binary"(%6, %7) {fn = "*"} : (f64, f64) -> (f64)
      "teil.store"(%8, %8) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_9: index):
        %10 = "affine.load"(%m_2) : (tensor<4x4xf64>) -> (f64)
        "affine.store"(%10, %m_2) : (f64, tensor<4x4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4x4xf64>, tensor<4xindex>) -> (tensor<4xf64>)
    %11 = "ekl.binary"(%a_0, %c_3) {affine.lowered = true, bounds = [4], fn = "<=", indices = ["i0"], teil.lowered = true} ({
      ^bb0(%iv_12: index):
      %13 = "teil.load"(%a_0) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %14 = "teil.load"(%c_3) {note = "operand element"} : (tensor<f64>) -> (f64)
      %15 = "teil.binary"(%13, %14) {fn = "<="} : (f64, f64) -> (f64)
      "teil.store"(%15, %15) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_16: index):
        %17 = "affine.load"(%a_0) : (tensor<4xf64>) -> (f64)
        "affine.store"(%17, %a_0) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>, tensor<f64>) -> (tensor<4xf64>)
    %18 = "ekl.unary"(%a_0) {affine.lowered = true, bounds = [4], fn = "neg", indices = ["i0"], teil.lowered = true} ({
      ^bb0(%iv_19: index):
      %20 = "teil.load"(%a_0) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      "teil.store"(%20, %20) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_21: index):
        %22 = "affine.load"(%a_0) : (tensor<4xf64>) -> (f64)
        "affine.store"(%22, %a_0) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>) -> (tensor<4xf64>)
    %s_23 = "ekl.select"(%11, %g_4, %18) {affine.lowered = true, bounds = [4], indices = ["i0"], teil.lowered = true} ({
      ^bb0(%iv_24: index):
      %25 = "teil.load"(%11) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %26 = "teil.load"(%g_4) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %27 = "teil.load"(%18) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %28 = "teil.binary"(%25, %26) {fn = "*"} : (f64, f64) -> (f64)
      %29 = "teil.binary"(%28, %27) {fn = "*"} : (f64, f64) -> (f64)
      "teil.store"(%29, %29) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_30: index):
        %31 = "affine.load"(%11) : (tensor<4xf64>) -> (f64)
        "affine.store"(%31, %11) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>, tensor<4xf64>, tensor<4xf64>) -> (tensor<4xf64>)
    %e_32 = "ekl.unary"(%s_23) {affine.lowered = true, bounds = [4], fn = "exp", indices = ["i0"], teil.lowered = true} ({
      ^bb0(%iv_33: index):
      %34 = "teil.load"(%s_23) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      "teil.store"(%34, %34) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_35: index):
        %36 = "affine.load"(%s_23) : (tensor<4xf64>) -> (f64)
        "affine.store"(%36, %s_23) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>) -> (tensor<4xf64>)
    %37 = "ekl.binary"(%e_32, %a_0) {affine.lowered = true, bounds = [4], fn = "*", indices = ["i0"], teil.lowered = true} ({
      ^bb0(%iv_38: index):
      %39 = "teil.load"(%e_32) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %40 = "teil.load"(%a_0) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %41 = "teil.binary"(%39, %40) {fn = "*"} : (f64, f64) -> (f64)
      "teil.store"(%41, %41) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_42: index):
        %43 = "affine.load"(%e_32) : (tensor<4xf64>) -> (f64)
        "affine.store"(%43, %e_32) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>, tensor<4xf64>) -> (tensor<4xf64>)
    %y_44 = "esn.contract"(%37) {affine.lowered = true, bounds = [4], indices = ["r0"], reduce = ["i"], reduce_bounds = [4], spec = "a->", teil.lowered = true} ({
      ^bb0(%iv_45: index):
      %46 = "teil.load"(%37) {note = "operand element"} : (tensor<4xf64>) -> (f64)
      %47 = "builtin.constant"() {value = 0} : () -> (f64)
      %48 = "teil.accumulate"(%47, %46) : (f64, f64) -> (f64)
      "teil.store"(%48, %48) : (f64, f64) -> ()
      "teil.yield"() : () -> ()
    }, {
      "affine.for"() {lower = 0, upper = 4} ({
        ^bb0(%iv_49: index):
        %50 = "affine.load"(%37) : (tensor<4xf64>) -> (f64)
        "affine.store"(%50, %37) : (f64, tensor<4xf64>) -> ()
        "affine.yield"() : () -> ()
      }) : () -> ()
    }) : (tensor<4xf64>) -> (tensor<f64>)
    "ekl.output"(%y_44) {name = "y"} : (tensor<f64>) -> ()
  }) : () -> ()
}) : () -> ()
