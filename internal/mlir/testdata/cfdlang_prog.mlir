"builtin.module"() {sym_name = "golden_cfd"} ({
  "cfdlang.prog"() {sym_name = "golden_cfd"} ({
    %A_0 = "cfdlang.decl"() {name = "A"} : () -> (tensor<2x3xf64>)
    %B_1 = "cfdlang.decl"() {name = "B"} : () -> (tensor<3x2xf64>)
    %D_2 = "cfdlang.decl"() {name = "D"} : () -> (tensor<2x2xf64>)
    %3 = "cfdlang.mul"(%A_0, %B_1) : (tensor<2x3xf64>, tensor<3x2xf64>) -> (tensor<f64>)
    %4 = "cfdlang.contract"(%3) {pairs = "2 3"} : (tensor<f64>) -> (tensor<f64>)
    %5 = "cfdlang.add"(%4, %D_2) : (tensor<f64>, tensor<2x2xf64>) -> (tensor<f64>)
    %C_6 = "cfdlang.add"(%5, %D_2) : (tensor<f64>, tensor<2x2xf64>) -> (tensor<f64>)
    "cfdlang.out"(%C_6) {name = "C"} : (tensor<f64>) -> ()
  }) : () -> ()
}) : () -> ()
