package mlir

import (
	"fmt"
	"strings"
)

// Type is the interface satisfied by all IR types. Types are immutable value
// objects; equality is structural via the canonical String form.
type Type interface {
	// String renders the type in MLIR-like syntax (e.g. "tensor<4x8xf64>").
	String() string
}

// TypesEqual reports structural equality of two types.
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IntegerType is a fixed-width integer ("i32", "ui8" when unsigned).
type IntegerType struct {
	Width    int
	Unsigned bool
}

func (t IntegerType) String() string {
	if t.Unsigned {
		return fmt.Sprintf("ui%d", t.Width)
	}
	return fmt.Sprintf("i%d", t.Width)
}

// FloatType is an IEEE-754 binary float of the given width (16, 32, 64) or
// the truncated bfloat16 when BF is set.
type FloatType struct {
	Width int
	BF    bool
}

func (t FloatType) String() string {
	if t.BF {
		return "bf16"
	}
	return fmt.Sprintf("f%d", t.Width)
}

// IndexType is the platform index type used for subscripts and loop bounds.
type IndexType struct{}

func (IndexType) String() string { return "index" }

// BoolType is a 1-bit predicate, printed as i1.
type BoolType struct{}

func (BoolType) String() string { return "i1" }

// NoneType is the unit type for ops executed purely for effect.
type NoneType struct{}

func (NoneType) String() string { return "none" }

// TensorType is an immutable value-semantics tensor. A -1 dim is dynamic.
type TensorType struct {
	Shape []int
	Elem  Type
}

func (t TensorType) String() string {
	return fmt.Sprintf("tensor<%s%s>", dimsString(t.Shape), t.Elem)
}

// Rank returns the number of dimensions.
func (t TensorType) Rank() int { return len(t.Shape) }

// NumElements returns the static element count, or -1 if any dim is dynamic.
func (t TensorType) NumElements() int {
	n := 1
	for _, d := range t.Shape {
		if d < 0 {
			return -1
		}
		n *= d
	}
	return n
}

// MemRefType is a buffer-semantics tensor living in an addressable memory.
// Space names follow the EVEREST platform model: "host", "ddr", "hbm", "plm"
// (private local memory on the FPGA fabric), "stream".
type MemRefType struct {
	Shape []int
	Elem  Type
	Space string
}

func (t MemRefType) String() string {
	if t.Space == "" {
		return fmt.Sprintf("memref<%s%s>", dimsString(t.Shape), t.Elem)
	}
	return fmt.Sprintf("memref<%s%s, %q>", dimsString(t.Shape), t.Elem, t.Space)
}

// NumElements returns the static element count, or -1 if any dim is dynamic.
func (t MemRefType) NumElements() int {
	n := 1
	for _, d := range t.Shape {
		if d < 0 {
			return -1
		}
		n *= d
	}
	return n
}

// StreamType is a FIFO channel of elements, as used between dataflow actors
// (dfg dialect) and AXI-Stream endpoints.
type StreamType struct {
	Elem  Type
	Depth int // modelled FIFO depth; 0 means implementation-defined
}

func (t StreamType) String() string {
	if t.Depth > 0 {
		return fmt.Sprintf("stream<%s, %d>", t.Elem, t.Depth)
	}
	return fmt.Sprintf("stream<%s>", t.Elem)
}

// FunctionType types builtin.func ops and call sites.
type FunctionType struct {
	Inputs  []Type
	Results []Type
}

func (t FunctionType) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i, in := range t.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.String())
	}
	b.WriteString(") -> (")
	for i, r := range t.Results {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteString(")")
	return b.String()
}

// FixedType is a base2-dialect signed fixed-point type with IntBits integer
// bits (including sign) and FracBits fractional bits.
type FixedType struct {
	IntBits  int
	FracBits int
}

func (t FixedType) String() string { return fmt.Sprintf("!base2.fixed<%d,%d>", t.IntBits, t.FracBits) }

// TotalBits returns the storage width of the fixed-point format.
func (t FixedType) TotalBits() int { return t.IntBits + t.FracBits }

// PositType is a base2-dialect posit<N,ES> universal-number type.
type PositType struct {
	N  int
	ES int
}

func (t PositType) String() string { return fmt.Sprintf("!base2.posit<%d,%d>", t.N, t.ES) }

// BitWidthOf returns the modelled storage width in bits of t, used by the
// HLS resource estimator. Unknown aggregate types return 0.
func BitWidthOf(t Type) int {
	switch tt := t.(type) {
	case IntegerType:
		return tt.Width
	case FloatType:
		if tt.BF {
			return 16
		}
		return tt.Width
	case BoolType:
		return 1
	case IndexType:
		return 64
	case FixedType:
		return tt.TotalBits()
	case PositType:
		return tt.N
	default:
		return 0
	}
}

// ElemOf returns the element type of tensor/memref/stream types, or the type
// itself for scalars.
func ElemOf(t Type) Type {
	switch tt := t.(type) {
	case TensorType:
		return tt.Elem
	case MemRefType:
		return tt.Elem
	case StreamType:
		return tt.Elem
	default:
		return t
	}
}

// ShapeOf returns the shape of tensor/memref types and nil for scalars.
func ShapeOf(t Type) []int {
	switch tt := t.(type) {
	case TensorType:
		return tt.Shape
	case MemRefType:
		return tt.Shape
	default:
		return nil
	}
}

func dimsString(shape []int) string {
	var b strings.Builder
	for _, d := range shape {
		if d < 0 {
			b.WriteString("?x")
		} else {
			fmt.Fprintf(&b, "%dx", d)
		}
	}
	return b.String()
}

// Convenience constructors used throughout the SDK.

// F64 returns the 64-bit float type.
func F64() Type { return FloatType{Width: 64} }

// F32 returns the 32-bit float type.
func F32() Type { return FloatType{Width: 32} }

// BF16 returns the bfloat16 type.
func BF16() Type { return FloatType{Width: 16, BF: true} }

// I64 returns the 64-bit signed integer type.
func I64() Type { return IntegerType{Width: 64} }

// I32 returns the 32-bit signed integer type.
func I32() Type { return IntegerType{Width: 32} }

// I1 returns the 1-bit predicate type.
func I1() Type { return BoolType{} }

// Index returns the index type.
func Index() Type { return IndexType{} }

// TensorOf builds a TensorType.
func TensorOf(elem Type, shape ...int) TensorType { return TensorType{Shape: shape, Elem: elem} }

// MemRefOf builds a MemRefType in the given memory space.
func MemRefOf(elem Type, space string, shape ...int) MemRefType {
	return MemRefType{Shape: shape, Elem: elem, Space: space}
}
