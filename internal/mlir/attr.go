package mlir

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Attribute is compile-time metadata attached to ops.
type Attribute interface {
	// String renders the attribute in MLIR-like syntax.
	String() string
}

// IntAttr holds a signed integer constant.
type IntAttr int64

func (a IntAttr) String() string { return strconv.FormatInt(int64(a), 10) }

// FloatAttr holds a float constant.
type FloatAttr float64

func (a FloatAttr) String() string { return strconv.FormatFloat(float64(a), 'g', -1, 64) }

// BoolAttr holds a boolean constant.
type BoolAttr bool

func (a BoolAttr) String() string { return strconv.FormatBool(bool(a)) }

// StringAttr holds a string constant.
type StringAttr string

func (a StringAttr) String() string { return strconv.Quote(string(a)) }

// TypeAttr wraps a Type as an attribute (e.g. function signatures).
type TypeAttr struct{ Type Type }

func (a TypeAttr) String() string { return a.Type.String() }

// ArrayAttr is an ordered list of attributes.
type ArrayAttr []Attribute

func (a ArrayAttr) String() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// IntsAttr builds an ArrayAttr of IntAttr from ints (shapes, multiplicity
// vectors such as ConDRust's multiplicity = [1, 1, 1, 1]).
func IntsAttr(vals ...int) ArrayAttr {
	arr := make(ArrayAttr, len(vals))
	for i, v := range vals {
		arr[i] = IntAttr(v)
	}
	return arr
}

// StringsAttr builds an ArrayAttr of StringAttr.
func StringsAttr(vals ...string) ArrayAttr {
	arr := make(ArrayAttr, len(vals))
	for i, v := range vals {
		arr[i] = StringAttr(v)
	}
	return arr
}

// DictAttr is a string-keyed attribute dictionary, printed sorted.
type DictAttr map[string]Attribute

func (a DictAttr) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s = %s", k, a[k].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// DenseAttr is a dense tensor constant (row-major float64 storage; the
// element type records the intended on-device format).
type DenseAttr struct {
	Shape []int
	Elem  Type
	Data  []float64
}

func (a DenseAttr) String() string {
	// Print small tensors in full and large ones abbreviated, keeping module
	// dumps readable without losing determinism.
	const maxInline = 16
	var b strings.Builder
	b.WriteString("dense<")
	if len(a.Data) <= maxInline {
		b.WriteString("[")
		for i, v := range a.Data {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteString("]")
	} else {
		fmt.Fprintf(&b, "...%d values...", len(a.Data))
	}
	fmt.Fprintf(&b, "> : tensor<%s%s>", dimsString(a.Shape), a.Elem)
	return b.String()
}

// GetInt fetches an IntAttr value with a default.
func GetInt(attrs map[string]Attribute, key string, def int64) int64 {
	if v, ok := attrs[key].(IntAttr); ok {
		return int64(v)
	}
	return def
}

// GetString fetches a StringAttr value with a default.
func GetString(attrs map[string]Attribute, key, def string) string {
	if v, ok := attrs[key].(StringAttr); ok {
		return string(v)
	}
	return def
}

// GetBool fetches a BoolAttr value with a default.
func GetBool(attrs map[string]Attribute, key string, def bool) bool {
	if v, ok := attrs[key].(BoolAttr); ok {
		return bool(v)
	}
	return def
}

// GetFloat fetches a FloatAttr value with a default.
func GetFloat(attrs map[string]Attribute, key string, def float64) float64 {
	if v, ok := attrs[key].(FloatAttr); ok {
		return float64(v)
	}
	return def
}
