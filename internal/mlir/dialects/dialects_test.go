package dialects

import (
	"strings"
	"testing"

	"everest/internal/mlir"
)

func newCtx() *mlir.Context {
	ctx := mlir.NewContext()
	RegisterAll(ctx)
	return ctx
}

func TestRegisterAllInstallsEveryDialect(t *testing.T) {
	ctx := newCtx()
	want := []string{"affine", "base2", "builtin", "cfdlang", "dfg", "ekl",
		"esn", "evp", "fsm", "jabbah", "olympus", "teil"}
	got := ctx.DialectNames()
	if len(got) != len(want) {
		t.Fatalf("dialects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dialects = %v, want %v", got, want)
		}
	}
}

// buildIn returns a module + builder positioned inside a function body.
func buildIn(t *testing.T) (*mlir.Module, *mlir.Builder) {
	t.Helper()
	ctx := newCtx()
	m := mlir.NewModule(ctx, "t")
	b := mlir.NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", mlir.FunctionType{})
	return m, fb
}

func TestEinsumVerifier(t *testing.T) {
	m, fb := buildIn(t)
	v := fb.ConstantFloat(0, mlir.TensorOf(mlir.F64(), 2, 2))
	// Missing spec.
	fb.Create("ekl.einsum", []*mlir.Value{v}, []mlir.Type{mlir.F64()}, nil)
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "spec") {
		t.Errorf("einsum without spec must fail, got %v", err)
	}

	m2, fb2 := buildIn(t)
	v2 := fb2.ConstantFloat(0, mlir.TensorOf(mlir.F64(), 2, 2))
	fb2.Create("ekl.einsum", []*mlir.Value{v2}, []mlir.Type{mlir.F64()},
		map[string]mlir.Attribute{"spec": mlir.StringAttr("ab,bc->ac")}) // 2 inputs, 1 operand
	if err := m2.Verify(); err == nil {
		t.Error("einsum operand/spec mismatch must fail")
	}

	m3, fb3 := buildIn(t)
	v3 := fb3.ConstantFloat(0, mlir.TensorOf(mlir.F64(), 2, 2))
	fb3.Create("ekl.einsum", []*mlir.Value{v3}, []mlir.Type{mlir.F64()},
		map[string]mlir.Attribute{"spec": mlir.StringAttr("ab->a")})
	if err := m3.Verify(); err != nil {
		t.Errorf("valid einsum rejected: %v", err)
	}

	m4, fb4 := buildIn(t)
	v4 := fb4.ConstantFloat(0, mlir.TensorOf(mlir.F64(), 2, 2))
	fb4.Create("ekl.einsum", []*mlir.Value{v4}, []mlir.Type{mlir.F64()},
		map[string]mlir.Attribute{"spec": mlir.StringAttr("noarrow")})
	if err := m4.Verify(); err == nil {
		t.Error("einsum spec without arrow must fail")
	}
}

func TestTeilLoopVerifier(t *testing.T) {
	m, fb := buildIn(t)
	loop := fb.CreateWithRegions("teil.loop", nil, nil, map[string]mlir.Attribute{
		"indices": mlir.StringsAttr("i", "j"),
		"bounds":  mlir.IntsAttr(4), // length mismatch
	}, 1)
	_ = loop
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Errorf("teil.loop index/bound mismatch must fail, got %v", err)
	}

	m2, fb2 := buildIn(t)
	loop2 := fb2.CreateWithRegions("teil.loop", nil, nil, map[string]mlir.Attribute{
		"indices": mlir.StringsAttr("i"),
		"bounds":  mlir.IntsAttr(4),
	}, 1)
	loop2.Regions[0].Entry().AddArg(m2.Context(), mlir.Index(), "i")
	if err := m2.Verify(); err != nil {
		t.Errorf("valid teil.loop rejected: %v", err)
	}
}

func TestAffineForVerifier(t *testing.T) {
	m, fb := buildIn(t)
	fb.CreateWithRegions("affine.for", nil, nil, map[string]mlir.Attribute{
		"lower": mlir.IntAttr(5), "upper": mlir.IntAttr(2), // inverted
	}, 1)
	if err := m.Verify(); err == nil {
		t.Error("inverted affine.for bounds must fail")
	}

	m2, fb2 := buildIn(t)
	forOp := fb2.CreateWithRegions("affine.for", nil, nil, map[string]mlir.Attribute{
		"lower": mlir.IntAttr(0), "upper": mlir.IntAttr(8),
	}, 1)
	forOp.Regions[0].Entry().AddArg(m2.Context(), mlir.Index(), "iv")
	if err := m2.Verify(); err != nil {
		t.Errorf("valid affine.for rejected: %v", err)
	}

	m3, fb3 := buildIn(t)
	fb3.CreateWithRegions("affine.for", nil, nil, map[string]mlir.Attribute{
		"lower": mlir.IntAttr(0), "upper": mlir.IntAttr(8),
	}, 1) // no induction arg
	if err := m3.Verify(); err == nil {
		t.Error("affine.for without induction argument must fail")
	}
}

func TestBase2CastVerifier(t *testing.T) {
	m, fb := buildIn(t)
	v := fb.ConstantFloat(0, mlir.F64())
	fb.Create("base2.quantize", []*mlir.Value{v}, []mlir.Type{mlir.F64()}, nil) // same type
	if err := m.Verify(); err == nil {
		t.Error("identity cast must fail")
	}

	m2, fb2 := buildIn(t)
	v2 := fb2.ConstantFloat(0, mlir.F64())
	fb2.Create("base2.quantize", []*mlir.Value{v2},
		[]mlir.Type{mlir.FixedType{IntBits: 8, FracBits: 8}}, nil)
	if err := m2.Verify(); err != nil {
		t.Errorf("valid quantize rejected: %v", err)
	}
}

func TestDFGNodeVerifier(t *testing.T) {
	m, fb := buildIn(t)
	fb.Create("dfg.node", nil, []mlir.Type{mlir.F64()}, nil) // missing fn
	if err := m.Verify(); err == nil {
		t.Error("dfg.node without fn must fail")
	}

	m2, fb2 := buildIn(t)
	fb2.Create("dfg.node", nil, []mlir.Type{mlir.F64()}, map[string]mlir.Attribute{
		"fn": mlir.StringAttr("projection"), "offloaded": mlir.BoolAttr(true),
	}) // offloaded without path
	if err := m2.Verify(); err == nil || !strings.Contains(err.Error(), "path") {
		t.Errorf("offloaded node without path must fail, got %v", err)
	}

	m3, fb3 := buildIn(t)
	fb3.Create("dfg.node", nil, []mlir.Type{mlir.F64()}, map[string]mlir.Attribute{
		"fn": mlir.StringAttr("projection"), "offloaded": mlir.BoolAttr(true),
		"path": mlir.StringAttr("projection.cpp"),
	})
	if err := m3.Verify(); err != nil {
		t.Errorf("valid offloaded node rejected: %v", err)
	}
}

func TestOlympusVerifiers(t *testing.T) {
	m, fb := buildIn(t)
	fb.Create("olympus.plm", nil, []mlir.Type{mlir.MemRefOf(mlir.F64(), "plm", 8)},
		map[string]mlir.Attribute{"words": mlir.IntAttr(0), "width": mlir.IntAttr(64)})
	if err := m.Verify(); err == nil {
		t.Error("plm with zero words must fail")
	}

	m2, fb2 := buildIn(t)
	fb2.Create("olympus.bus", nil, []mlir.Type{mlir.StreamType{Elem: mlir.F64()}},
		map[string]mlir.Attribute{"width": mlir.IntAttr(512), "lanes": mlir.IntAttr(3)})
	if err := m2.Verify(); err == nil {
		t.Error("bus width not divisible by lanes must fail")
	}

	m3, fb3 := buildIn(t)
	fb3.Create("olympus.bus", nil, []mlir.Type{mlir.StreamType{Elem: mlir.F64()}},
		map[string]mlir.Attribute{"width": mlir.IntAttr(512), "lanes": mlir.IntAttr(4)})
	if err := m3.Verify(); err != nil {
		t.Errorf("valid bus rejected: %v", err)
	}
}

func TestFSMOps(t *testing.T) {
	ctx := newCtx()
	m := mlir.NewModule(ctx, "fsm")
	b := mlir.NewBuilder(ctx, m.Body())
	mach := b.CreateWithRegions("fsm.machine", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr("dbuf_ctrl"),
	}, 1)
	mb := mlir.NewBuilder(ctx, mach.Regions[0].Entry())
	st := mb.CreateWithRegions("fsm.state", nil, nil, map[string]mlir.Attribute{
		"name": mlir.StringAttr("load"),
	}, 1)
	sb := mlir.NewBuilder(ctx, st.Regions[0].Entry())
	sb.Create("fsm.action", nil, nil, map[string]mlir.Attribute{"do": mlir.StringAttr("dma_read")})
	sb.Create("fsm.transition", nil, nil, map[string]mlir.Attribute{"to": mlir.StringAttr("exec")})
	if err := m.Verify(); err != nil {
		t.Fatalf("fsm module rejected: %v", err)
	}
	if m.CountOps("fsm.state") != 1 || m.CountOps("fsm.transition") != 1 {
		t.Error("fsm op counts wrong")
	}
}

func TestEVPOps(t *testing.T) {
	m, fb := buildIn(t)
	tgt := fb.Create("evp.target", nil, []mlir.Type{mlir.NoneType{}},
		map[string]mlir.Attribute{"platform": mlir.StringAttr("alveo-u55c")})
	fb.Create("evp.deploy", []*mlir.Value{tgt.Result(0)}, nil,
		map[string]mlir.Attribute{"node": mlir.StringAttr("node00")})
	fb.Create("evp.variant", nil, []mlir.Type{mlir.NoneType{}},
		map[string]mlir.Attribute{"name": mlir.StringAttr("fpga")})
	if err := m.Verify(); err != nil {
		t.Fatalf("evp ops rejected: %v", err)
	}

	m2, fb2 := buildIn(t)
	fb2.Create("evp.target", nil, []mlir.Type{mlir.NoneType{}}, nil)
	if err := m2.Verify(); err == nil {
		t.Error("evp.target without platform must fail")
	}
}

func TestJabbahAndCFDlangOps(t *testing.T) {
	m, fb := buildIn(t)
	a := fb.ConstantFloat(0, mlir.TensorOf(mlir.F32(), 2, 2))
	bT := fb.ConstantFloat(0, mlir.TensorOf(mlir.F32(), 2, 2))
	mmul := fb.Create("jabbah.matmul", []*mlir.Value{a, bT}, []mlir.Type{mlir.TensorOf(mlir.F32(), 2, 2)}, nil)
	fb.Create("jabbah.pool", []*mlir.Value{mmul.Result(0)},
		[]mlir.Type{mlir.TensorOf(mlir.F32(), 1, 1)},
		map[string]mlir.Attribute{"kind": mlir.StringAttr("max")})
	if err := m.Verify(); err != nil {
		t.Fatalf("jabbah ops rejected: %v", err)
	}

	m2, fb2 := buildIn(t)
	d := fb2.Create("cfdlang.decl", nil, []mlir.Type{mlir.TensorOf(mlir.F64(), 3, 3)},
		map[string]mlir.Attribute{"name": mlir.StringAttr("u")})
	mul := fb2.Create("cfdlang.mul", []*mlir.Value{d.Result(0), d.Result(0)},
		[]mlir.Type{mlir.TensorOf(mlir.F64(), 3, 3, 3, 3)}, nil)
	fb2.Create("cfdlang.contract", []*mlir.Value{mul.Result(0)},
		[]mlir.Type{mlir.TensorOf(mlir.F64(), 3, 3)},
		map[string]mlir.Attribute{"pairs": mlir.StringAttr("2 3")})
	if err := m2.Verify(); err != nil {
		t.Fatalf("cfdlang ops rejected: %v", err)
	}
}
