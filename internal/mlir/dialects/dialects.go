// Package dialects registers the EVEREST MLIR dialects of Fig. 5 of the
// paper: the frontends (ekl, cfdlang, jabbah), the tensor middle layers
// (teil, esn), the custom-format layer (base2), and the coordination /
// integration / backend layers (dfg, olympus, evp, fsm).
//
// Each Register* function installs operation definitions (arities plus
// semantic verifiers) into an mlir.Context. RegisterAll installs everything,
// which is what the SDK façade does on start-up.
package dialects

import (
	"fmt"

	"everest/internal/mlir"
)

// RegisterAll installs every EVEREST dialect into ctx.
func RegisterAll(ctx *mlir.Context) {
	RegisterEKL(ctx)
	RegisterESN(ctx)
	RegisterTeIL(ctx)
	RegisterCFDlang(ctx)
	RegisterJabbah(ctx)
	RegisterBase2(ctx)
	RegisterDFG(ctx)
	RegisterOlympus(ctx)
	RegisterEVP(ctx)
	RegisterFSM(ctx)
	RegisterAffine(ctx)
}

// RegisterEKL installs the EVEREST Kernel Language dialect: the direct
// representation of parsed EKL programs (paper §V-A1, Fig. 3).
func RegisterEKL(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("ekl")
	d.RegisterOp(&mlir.OpInfo{Name: "kernel", NumRegions: 1, Summary: "EKL kernel definition",
		Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "tensor", NumResults: 1, Summary: "named tensor binding",
		Verify: requireString("name")})
	d.RegisterOp(&mlir.OpInfo{Name: "einsum", MinOperands: 1, MaxOperands: -1, NumResults: 1,
		Summary: "Einstein-notation contraction", Verify: verifyEinsum})
	d.RegisterOp(&mlir.OpInfo{Name: "select", MinOperands: 3, MaxOperands: 3, NumResults: 1,
		Summary: "elementwise select(cond, a, b)"})
	d.RegisterOp(&mlir.OpInfo{Name: "gather", MinOperands: 2, MaxOperands: -1, NumResults: 1,
		Summary: "subscripted subscript a[i[x], x]"})
	d.RegisterOp(&mlir.OpInfo{Name: "range_pair", MinOperands: 1, MaxOperands: 2, NumResults: 1,
		Summary: "two-point index window [j, j+1]"})
	d.RegisterOp(&mlir.OpInfo{Name: "binary", MinOperands: 2, MaxOperands: 2, NumResults: 1,
		Summary: "elementwise broadcasted arithmetic", Verify: requireString("fn")})
	d.RegisterOp(&mlir.OpInfo{Name: "unary", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Verify: requireString("fn")})
	d.RegisterOp(&mlir.OpInfo{Name: "output", MinOperands: 1, MaxOperands: 1,
		Summary: "bind result tensor (in-place construction target)",
		Verify:  requireString("name")})
	return d
}

// RegisterESN installs the Einstein-notation dialect, the normalized form of
// contractions shared by ekl and cfdlang lowering.
func RegisterESN(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("esn")
	d.RegisterOp(&mlir.OpInfo{Name: "contract", MinOperands: 1, MaxOperands: -1, NumResults: 1,
		Summary: "sum-of-products over named indices", Verify: verifyEinsum})
	d.RegisterOp(&mlir.OpInfo{Name: "map", MinOperands: 1, MaxOperands: -1, NumResults: 1,
		Verify: requireString("fn")})
	d.RegisterOp(&mlir.OpInfo{Name: "reduce", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Verify: requireString("fn")})
	return d
}

// RegisterTeIL installs the tensor intermediate language (Rink et al.,
// ARRAY 2019): bufferized tensor programs ready for HLS.
func RegisterTeIL(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("teil")
	d.RegisterOp(&mlir.OpInfo{Name: "alloc", NumResults: 1, Summary: "tensor buffer allocation"})
	d.RegisterOp(&mlir.OpInfo{Name: "load", MinOperands: 1, MaxOperands: -1, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "store", MinOperands: 2, MaxOperands: -1})
	d.RegisterOp(&mlir.OpInfo{Name: "loop", MinOperands: 0, MaxOperands: 0, NumRegions: 1,
		Summary: "dense loop nest over named index space", Verify: verifyLoop})
	d.RegisterOp(&mlir.OpInfo{Name: "yield", MinOperands: 0, MaxOperands: -1, Terminator: true})
	d.RegisterOp(&mlir.OpInfo{Name: "binary", MinOperands: 2, MaxOperands: 2, NumResults: 1,
		Verify: requireString("fn")})
	d.RegisterOp(&mlir.OpInfo{Name: "unary", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Verify: requireString("fn")})
	d.RegisterOp(&mlir.OpInfo{Name: "accumulate", MinOperands: 2, MaxOperands: 2, NumResults: 1,
		Summary: "reduction accumulate into scalar carry"})
	return d
}

// RegisterCFDlang installs the legacy CFDlang frontend dialect (paper §V-B).
func RegisterCFDlang(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("cfdlang")
	d.RegisterOp(&mlir.OpInfo{Name: "prog", NumRegions: 1, Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "decl", NumResults: 1, Verify: requireString("name")})
	d.RegisterOp(&mlir.OpInfo{Name: "mul", MinOperands: 2, MaxOperands: 2, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "add", MinOperands: 2, MaxOperands: 2, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "contract", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Summary: "pairwise index contraction t.ij.ij"})
	d.RegisterOp(&mlir.OpInfo{Name: "out", MinOperands: 1, MaxOperands: 1,
		Verify: requireString("name")})
	return d
}

// RegisterJabbah installs the ML operation-set-architecture dialect used to
// converge ONNX/TVM-style graphs (paper §V-B, Ringlein et al. OSA).
func RegisterJabbah(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("jabbah")
	d.RegisterOp(&mlir.OpInfo{Name: "graph", NumRegions: 1, Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "matmul", MinOperands: 2, MaxOperands: 2, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "conv2d", MinOperands: 2, MaxOperands: 3, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "relu", MinOperands: 1, MaxOperands: 1, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "add", MinOperands: 2, MaxOperands: 2, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "softmax", MinOperands: 1, MaxOperands: 1, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "pool", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Verify: requireString("kind")})
	d.RegisterOp(&mlir.OpInfo{Name: "output", MinOperands: 1, MaxOperands: -1})
	return d
}

// RegisterBase2 installs the binary-numeral-type dialect (Friebel et al.,
// HEART 2023): conversions between IEEE floats and custom formats.
func RegisterBase2(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("base2")
	d.RegisterOp(&mlir.OpInfo{Name: "quantize", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Summary: "float -> custom format", Verify: verifyCast})
	d.RegisterOp(&mlir.OpInfo{Name: "dequantize", MinOperands: 1, MaxOperands: 1, NumResults: 1,
		Summary: "custom format -> float", Verify: verifyCast})
	d.RegisterOp(&mlir.OpInfo{Name: "arith", MinOperands: 2, MaxOperands: 2, NumResults: 1,
		Summary: "format-preserving arithmetic", Verify: requireString("fn")})
	return d
}

// RegisterDFG installs the dataflow-graph dialect produced from ConDRust
// (paper §V-A2, Fig. 4): deterministic actors connected by streams.
func RegisterDFG(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("dfg")
	d.RegisterOp(&mlir.OpInfo{Name: "graph", NumRegions: 1, Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "node", MinOperands: 0, MaxOperands: -1, NumResults: -1,
		Summary: "dataflow actor", Verify: verifyDFGNode})
	d.RegisterOp(&mlir.OpInfo{Name: "channel", NumResults: 1, Summary: "typed FIFO edge"})
	d.RegisterOp(&mlir.OpInfo{Name: "output", MinOperands: 0, MaxOperands: -1})
	return d
}

// RegisterOlympus installs the system-generation dialect (Soldavini et al.,
// arXiv 2309.12917): kernel instances, PLMs, buses and lanes.
func RegisterOlympus(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("olympus")
	d.RegisterOp(&mlir.OpInfo{Name: "system", NumRegions: 1, Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "kernel_inst", MinOperands: 0, MaxOperands: -1, NumResults: -1,
		Verify: requireString("kernel")})
	d.RegisterOp(&mlir.OpInfo{Name: "plm", NumResults: 1, Summary: "private local memory",
		Verify: verifyPLM})
	d.RegisterOp(&mlir.OpInfo{Name: "bus", NumResults: 1, Summary: "memory bus with lanes",
		Verify: verifyBus})
	d.RegisterOp(&mlir.OpInfo{Name: "dma", MinOperands: 2, MaxOperands: 2,
		Summary: "host<->device transfer edge"})
	d.RegisterOp(&mlir.OpInfo{Name: "done", MinOperands: 0, MaxOperands: 0, Terminator: true})
	return d
}

// RegisterEVP installs the EVEREST-platform integration dialect: deployment
// targets and runtime bindings.
func RegisterEVP(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("evp")
	d.RegisterOp(&mlir.OpInfo{Name: "target", NumResults: 1, Verify: requireString("platform")})
	d.RegisterOp(&mlir.OpInfo{Name: "deploy", MinOperands: 1, MaxOperands: -1,
		Verify: requireString("node")})
	d.RegisterOp(&mlir.OpInfo{Name: "variant", MinOperands: 0, MaxOperands: 0, NumResults: 1,
		Summary: "autotuner-selectable implementation variant",
		Verify:  requireString("name")})
	return d
}

// RegisterFSM installs the finite-state-machine dialect used for generated
// controllers of the memory subsystem.
func RegisterFSM(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("fsm")
	d.RegisterOp(&mlir.OpInfo{Name: "machine", NumRegions: 1, Verify: requireString("sym_name")})
	d.RegisterOp(&mlir.OpInfo{Name: "state", NumRegions: 1, Verify: requireString("name")})
	d.RegisterOp(&mlir.OpInfo{Name: "transition", MinOperands: 0, MaxOperands: 1,
		Verify: requireString("to")})
	d.RegisterOp(&mlir.OpInfo{Name: "action", MinOperands: 0, MaxOperands: -1,
		Verify: requireString("do")})
	return d
}

// RegisterAffine installs the loop-level dialect shared with core MLIR
// (green boxes of Fig. 5): the form consumed by the HLS scheduler.
func RegisterAffine(ctx *mlir.Context) *mlir.Dialect {
	d := ctx.RegisterDialect("affine")
	d.RegisterOp(&mlir.OpInfo{Name: "for", MinOperands: 0, MaxOperands: 0, NumRegions: 1,
		Verify: verifyAffineFor})
	d.RegisterOp(&mlir.OpInfo{Name: "load", MinOperands: 1, MaxOperands: -1, NumResults: 1})
	d.RegisterOp(&mlir.OpInfo{Name: "store", MinOperands: 2, MaxOperands: -1})
	d.RegisterOp(&mlir.OpInfo{Name: "yield", MinOperands: 0, MaxOperands: -1, Terminator: true})
	d.RegisterOp(&mlir.OpInfo{Name: "apply", MinOperands: 0, MaxOperands: -1, NumResults: 1,
		Summary: "affine index arithmetic"})
	return d
}

func requireString(key string) func(*mlir.Op) error {
	return func(op *mlir.Op) error {
		if _, ok := op.Attrs[key].(mlir.StringAttr); !ok {
			return fmt.Errorf("requires string attribute %q", key)
		}
		return nil
	}
}

func verifyEinsum(op *mlir.Op) error {
	spec, ok := op.Attrs["spec"].(mlir.StringAttr)
	if !ok {
		return fmt.Errorf("requires string attribute \"spec\"")
	}
	s := string(spec)
	arrow := -1
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '-' && s[i+1] == '>' {
			arrow = i
			break
		}
	}
	if arrow < 0 {
		return fmt.Errorf("einsum spec %q missing ->", s)
	}
	lhs := s[:arrow]
	nInputs := 1
	for _, c := range lhs {
		if c == ',' {
			nInputs++
		}
	}
	if nInputs != len(op.Operands) {
		return fmt.Errorf("einsum spec %q names %d inputs but op has %d operands",
			s, nInputs, len(op.Operands))
	}
	return nil
}

func verifyLoop(op *mlir.Op) error {
	idx, ok := op.Attrs["indices"].(mlir.ArrayAttr)
	if !ok {
		return fmt.Errorf("teil.loop requires array attribute \"indices\"")
	}
	bounds, ok := op.Attrs["bounds"].(mlir.ArrayAttr)
	if !ok {
		return fmt.Errorf("teil.loop requires array attribute \"bounds\"")
	}
	if len(idx) != len(bounds) {
		return fmt.Errorf("teil.loop has %d indices but %d bounds", len(idx), len(bounds))
	}
	if len(op.Regions) != 1 || len(op.Regions[0].Blocks) == 0 {
		return fmt.Errorf("teil.loop requires a body region")
	}
	if got, want := len(op.Regions[0].Blocks[0].Args), len(idx); got != want {
		return fmt.Errorf("teil.loop body has %d args, want %d (one per index)", got, want)
	}
	return nil
}

func verifyAffineFor(op *mlir.Op) error {
	lo := mlir.GetInt(op.Attrs, "lower", -1)
	hi, ok := op.Attrs["upper"].(mlir.IntAttr)
	if !ok {
		return fmt.Errorf("affine.for requires int attribute \"upper\"")
	}
	if lo < 0 {
		return fmt.Errorf("affine.for requires non-negative \"lower\"")
	}
	if int64(hi) < lo {
		return fmt.Errorf("affine.for bounds inverted: [%d, %d)", lo, int64(hi))
	}
	if len(op.Regions) != 1 || len(op.Regions[0].Blocks) == 0 ||
		len(op.Regions[0].Blocks[0].Args) != 1 {
		return fmt.Errorf("affine.for body must have exactly one induction argument")
	}
	return nil
}

func verifyCast(op *mlir.Op) error {
	if len(op.Operands) != 1 || len(op.Results) != 1 {
		return fmt.Errorf("cast must be unary")
	}
	if mlir.TypesEqual(op.Operand(0).Type(), op.Result(0).Type()) {
		return fmt.Errorf("cast between identical types %s", op.Operand(0).Type())
	}
	return nil
}

func verifyDFGNode(op *mlir.Op) error {
	if _, ok := op.Attrs["fn"].(mlir.StringAttr); !ok {
		return fmt.Errorf("dfg.node requires string attribute \"fn\"")
	}
	// Offloaded nodes must carry the kernel path, mirroring ConDRust's
	// #[kernel(offloaded = true, path = "...")] annotation.
	if mlir.GetBool(op.Attrs, "offloaded", false) {
		if mlir.GetString(op.Attrs, "path", "") == "" {
			return fmt.Errorf("offloaded dfg.node requires \"path\" to the kernel source")
		}
	}
	return nil
}

func verifyPLM(op *mlir.Op) error {
	if mlir.GetInt(op.Attrs, "words", 0) <= 0 {
		return fmt.Errorf("olympus.plm requires positive \"words\"")
	}
	if mlir.GetInt(op.Attrs, "width", 0) <= 0 {
		return fmt.Errorf("olympus.plm requires positive \"width\"")
	}
	return nil
}

func verifyBus(op *mlir.Op) error {
	width := mlir.GetInt(op.Attrs, "width", 0)
	lanes := mlir.GetInt(op.Attrs, "lanes", 1)
	if width <= 0 {
		return fmt.Errorf("olympus.bus requires positive \"width\"")
	}
	if lanes <= 0 || width%lanes != 0 {
		return fmt.Errorf("olympus.bus width %d not divisible into %d lanes", width, lanes)
	}
	return nil
}
