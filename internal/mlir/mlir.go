// Package mlir implements a compact, from-scratch multi-level intermediate
// representation modelled after the MLIR framework the EVEREST SDK builds on
// (Lattner et al., CGO 2021; paper §V-B, Fig. 5).
//
// The package provides:
//
//   - a Context owning dialect registrations and type/attribute uniquing,
//   - SSA Values, Ops with attributes and nested Regions/Blocks,
//   - a structural verifier (SSA dominance, operand/result arities,
//     per-op semantic checks registered by dialects),
//   - a PassManager running module passes with statistics, and
//   - a deterministic textual printer in generic-MLIR syntax.
//
// EVEREST dialects (ekl, esn, teil, base2, dfg, olympus, evp, fsm — the blue
// boxes of Fig. 5) live in the dialects subpackage and register themselves on
// a Context via their Register functions.
package mlir

import (
	"fmt"
	"sort"
)

// Context owns dialects and produces IR entities. A Context is not safe for
// concurrent mutation; build modules from a single goroutine.
type Context struct {
	dialects map[string]*Dialect
	nextID   int
}

// NewContext returns an empty Context with only the builtin dialect loaded.
func NewContext() *Context {
	c := &Context{dialects: make(map[string]*Dialect)}
	registerBuiltin(c)
	return c
}

// Dialect groups operation definitions under a namespace (e.g. "teil").
type Dialect struct {
	Name string
	ops  map[string]*OpInfo
}

// OpInfo describes one operation of a dialect: its expected arities and an
// optional semantic verifier invoked by Module.Verify.
type OpInfo struct {
	Name        string // fully qualified, e.g. "teil.contract"
	Summary     string // one-line doc
	MinOperands int
	MaxOperands int // -1 means variadic
	NumResults  int // -1 means variadic
	NumRegions  int
	Verify      func(op *Op) error
	Terminator  bool // true if the op must end its block
}

// RegisterDialect creates (or returns the existing) dialect with that name.
func (c *Context) RegisterDialect(name string) *Dialect {
	if d, ok := c.dialects[name]; ok {
		return d
	}
	d := &Dialect{Name: name, ops: make(map[string]*OpInfo)}
	c.dialects[name] = d
	return d
}

// Dialect returns a registered dialect or nil.
func (c *Context) Dialect(name string) *Dialect { return c.dialects[name] }

// DialectNames returns the sorted names of all registered dialects.
func (c *Context) DialectNames() []string {
	names := make([]string, 0, len(c.dialects))
	for n := range c.dialects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterOp adds an operation definition to the dialect. The name must be
// unqualified ("contract", not "teil.contract").
func (d *Dialect) RegisterOp(info *OpInfo) {
	if info.Name == "" {
		panic("mlir: RegisterOp with empty name")
	}
	qualified := d.Name + "." + info.Name
	cp := *info
	cp.Name = qualified
	d.ops[info.Name] = &cp
}

// OpInfo returns the definition for an unqualified op name, or nil.
func (d *Dialect) OpInfo(name string) *OpInfo { return d.ops[name] }

// lookupOp resolves "dialect.op" to its OpInfo. Unregistered ops are legal
// (unknown dialects are allowed, as in MLIR) and yield nil.
func (c *Context) lookupOp(dialect, name string) *OpInfo {
	d, ok := c.dialects[dialect]
	if !ok {
		return nil
	}
	return d.ops[name]
}

func (c *Context) newID() int {
	c.nextID++
	return c.nextID
}

// registerBuiltin installs the builtin dialect: module and func scaffolding
// shared by every flow.
func registerBuiltin(c *Context) {
	b := c.RegisterDialect("builtin")
	b.RegisterOp(&OpInfo{Name: "module", NumResults: 0, NumRegions: 1})
	b.RegisterOp(&OpInfo{Name: "func", NumResults: 0, NumRegions: 1,
		Verify: func(op *Op) error {
			if _, ok := op.Attrs["sym_name"].(StringAttr); !ok {
				return fmt.Errorf("builtin.func requires string attribute sym_name")
			}
			return nil
		}})
	b.RegisterOp(&OpInfo{Name: "return", MinOperands: 0, MaxOperands: -1, Terminator: true})
	b.RegisterOp(&OpInfo{Name: "constant", NumResults: 1,
		Verify: func(op *Op) error {
			if _, ok := op.Attrs["value"]; !ok {
				return fmt.Errorf("builtin.constant requires a value attribute")
			}
			return nil
		}})
	b.RegisterOp(&OpInfo{Name: "call", MinOperands: 0, MaxOperands: -1, NumResults: -1,
		Verify: func(op *Op) error {
			if _, ok := op.Attrs["callee"].(StringAttr); !ok {
				return fmt.Errorf("builtin.call requires string attribute callee")
			}
			return nil
		}})
	b.RegisterOp(&OpInfo{Name: "unrealized_cast", MinOperands: 1, MaxOperands: 1, NumResults: 1})
}
