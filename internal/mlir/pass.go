package mlir

import (
	"fmt"
	"strings"
	"time"
)

// Pass is a module-level transformation or analysis.
type Pass interface {
	// Name identifies the pass in pipeline dumps ("ekl-to-teil").
	Name() string
	// Run mutates or analyses the module. Errors abort the pipeline.
	Run(m *Module) error
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(m *Module) error
}

// Name returns the pass name.
func (p PassFunc) Name() string { return p.PassName }

// Run invokes the wrapped function.
func (p PassFunc) Run(m *Module) error { return p.Fn(m) }

// PassStat records one pass execution for diagnostics and the E2 experiment.
type PassStat struct {
	Pass     string
	Duration time.Duration
	OpsAfter int
	Err      error
}

// PassManager runs a pipeline of passes with verification between stages.
type PassManager struct {
	passes      []Pass
	VerifyEach  bool // verify the module after every pass (default true via NewPassManager)
	Stats       []PassStat
	DumpEachTo  *strings.Builder // optional: textual IR after each pass
	FailOnStats bool
}

// NewPassManager returns a PassManager with per-pass verification enabled.
func NewPassManager() *PassManager { return &PassManager{VerifyEach: true} }

// Add appends passes to the pipeline and returns the manager for chaining.
func (pm *PassManager) Add(passes ...Pass) *PassManager {
	pm.passes = append(pm.passes, passes...)
	return pm
}

// AddFunc appends a function pass.
func (pm *PassManager) AddFunc(name string, fn func(m *Module) error) *PassManager {
	return pm.Add(PassFunc{PassName: name, Fn: fn})
}

// Run executes the pipeline. On error it reports which pass failed. Stats
// are recorded for each executed pass.
func (pm *PassManager) Run(m *Module) error {
	pm.Stats = pm.Stats[:0]
	for _, p := range pm.passes {
		start := time.Now()
		err := p.Run(m)
		stat := PassStat{Pass: p.Name(), Duration: time.Since(start), Err: err}
		if err == nil {
			n := 0
			m.Walk(func(*Op) { n++ })
			stat.OpsAfter = n
		}
		pm.Stats = append(pm.Stats, stat)
		if err != nil {
			return fmt.Errorf("pass %q failed: %w", p.Name(), err)
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				return fmt.Errorf("verification after pass %q failed: %w", p.Name(), err)
			}
		}
		if pm.DumpEachTo != nil {
			fmt.Fprintf(pm.DumpEachTo, "// ----- after %s -----\n%s\n", p.Name(), m.String())
		}
	}
	return nil
}

// PipelineString renders the pipeline like "a,b,c" for logs.
func (pm *PassManager) PipelineString() string {
	names := make([]string, len(pm.passes))
	for i, p := range pm.passes {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// ReplaceAllUses rewrites every use of old with new within the module.
func (m *Module) ReplaceAllUses(old, new *Value) {
	m.Walk(func(op *Op) {
		for i, operand := range op.Operands {
			if operand == old {
				op.Operands[i] = new
			}
		}
	})
}

// EraseOps removes ops matching pred from every block (results must be
// unused or already replaced).
func (m *Module) EraseOps(pred func(*Op) bool) int {
	removed := 0
	m.WalkBlocks(func(b *Block) {
		kept := b.Ops[:0]
		for _, op := range b.Ops {
			if pred(op) {
				removed++
				continue
			}
			kept = append(kept, op)
		}
		b.Ops = kept
	})
	return removed
}

// DeadCodeElim removes side-effect-free ops whose results are all unused.
// Side effects are conservatively assumed for ops with regions, terminators,
// and any op name carrying "store", "write", "output", "yield" or "call".
func DeadCodeElim() Pass {
	return PassFunc{PassName: "dce", Fn: func(m *Module) error {
		for {
			used := make(map[*Value]bool)
			m.Walk(func(op *Op) {
				for _, v := range op.Operands {
					used[v] = true
				}
			})
			removed := m.EraseOps(func(op *Op) bool {
				if len(op.Regions) > 0 || len(op.Results) == 0 {
					return false
				}
				if hasSideEffectName(op) {
					return false
				}
				if info := op.ctx.lookupOp(op.Dialect, op.Name); info != nil && info.Terminator {
					return false
				}
				for _, r := range op.Results {
					if used[r] {
						return false
					}
				}
				return true
			})
			if removed == 0 {
				return nil
			}
		}
	}}
}

func hasSideEffectName(op *Op) bool {
	for _, frag := range []string{"store", "write", "output", "yield", "call", "push", "send"} {
		if strings.Contains(op.Name, frag) {
			return true
		}
	}
	return false
}
