package mlir

import (
	"fmt"
)

// Value is an SSA value: either an op result or a block argument.
type Value struct {
	id   int
	typ  Type
	def  *Op    // defining op; nil for block arguments
	ownr *Block // owning block for block arguments; nil for op results
	idx  int    // result index or argument index
	name string // optional debug name (e.g. the EKL identifier)
}

// Type returns the value's type.
func (v *Value) Type() Type { return v.typ }

// SetType replaces the type (used by lowering passes that refine shapes).
func (v *Value) SetType(t Type) { v.typ = t }

// DefiningOp returns the op producing this value, or nil for block args.
func (v *Value) DefiningOp() *Op { return v.def }

// IsBlockArg reports whether the value is a block argument.
func (v *Value) IsBlockArg() bool { return v.ownr != nil }

// Name returns the debug name, if any.
func (v *Value) Name() string { return v.name }

// SetName attaches a debug name used by the printer.
func (v *Value) SetName(n string) { v.name = n }

// ID returns the context-unique id (stable within one Context).
func (v *Value) ID() int { return v.id }

// Op is a generic operation: qualified name, operands, results, attributes,
// and nested regions.
type Op struct {
	ctx      *Context
	Dialect  string
	Name     string // unqualified
	Operands []*Value
	Results  []*Value
	Attrs    map[string]Attribute
	Regions  []*Region
	parent   *Block
}

// FullName returns "dialect.name".
func (o *Op) FullName() string { return o.Dialect + "." + o.Name }

// Is reports whether the op has the given qualified name.
func (o *Op) Is(qualified string) bool { return o.FullName() == qualified }

// Context returns the owning context.
func (o *Op) Context() *Context { return o.ctx }

// ParentBlock returns the block containing this op, or nil for the module op.
func (o *Op) ParentBlock() *Block { return o.parent }

// ParentOp returns the op owning the region containing this op, or nil.
func (o *Op) ParentOp() *Op {
	if o.parent == nil || o.parent.region == nil {
		return nil
	}
	return o.parent.region.parent
}

// Result returns the i-th result value.
func (o *Op) Result(i int) *Value { return o.Results[i] }

// Operand returns the i-th operand value.
func (o *Op) Operand(i int) *Value { return o.Operands[i] }

// SetAttr sets an attribute, allocating the map on first use.
func (o *Op) SetAttr(key string, a Attribute) {
	if o.Attrs == nil {
		o.Attrs = make(map[string]Attribute)
	}
	o.Attrs[key] = a
}

// AddRegion appends a fresh region (with an empty entry block) to the op.
func (o *Op) AddRegion() *Region {
	r := &Region{parent: o}
	r.Entry()
	o.Regions = append(o.Regions, r)
	return r
}

// Region is an ordered list of blocks nested under an op.
type Region struct {
	Blocks []*Block
	parent *Op
}

// ParentOp returns the op owning this region.
func (r *Region) ParentOp() *Op { return r.parent }

// Entry returns the first block, creating it if the region is empty.
func (r *Region) Entry() *Block {
	if len(r.Blocks) == 0 {
		b := &Block{region: r}
		r.Blocks = append(r.Blocks, b)
	}
	return r.Blocks[0]
}

// AddBlock appends a fresh block to the region.
func (r *Region) AddBlock() *Block {
	b := &Block{region: r}
	r.Blocks = append(r.Blocks, b)
	return b
}

// Block holds arguments and a straight-line list of ops.
type Block struct {
	Args   []*Value
	Ops    []*Op
	region *Region
}

// Region returns the region containing this block.
func (b *Block) Region() *Region { return b.region }

// AddArg appends a typed block argument and returns its value.
func (b *Block) AddArg(ctx *Context, t Type, name string) *Value {
	v := &Value{id: ctx.newID(), typ: t, ownr: b, idx: len(b.Args), name: name}
	b.Args = append(b.Args, v)
	return v
}

// push appends an op (used by the builder).
func (b *Block) push(op *Op) {
	op.parent = b
	b.Ops = append(b.Ops, op)
}

// Terminator returns the last op if its OpInfo marks it as a terminator.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	last := b.Ops[len(b.Ops)-1]
	if info := last.ctx.lookupOp(last.Dialect, last.Name); info != nil && info.Terminator {
		return last
	}
	return nil
}

// Module is the root of an IR tree: a builtin.module op with one region.
type Module struct {
	ctx *Context
	op  *Op
}

// NewModule creates an empty module in the context.
func NewModule(ctx *Context, name string) *Module {
	op := &Op{ctx: ctx, Dialect: "builtin", Name: "module"}
	op.SetAttr("sym_name", StringAttr(name))
	op.Regions = []*Region{{parent: op}}
	op.Regions[0].Entry()
	return &Module{ctx: ctx, op: op}
}

// Context returns the owning context.
func (m *Module) Context() *Context { return m.ctx }

// Op returns the underlying builtin.module op.
func (m *Module) Op() *Op { return m.op }

// Name returns the module symbol name.
func (m *Module) Name() string { return GetString(m.op.Attrs, "sym_name", "") }

// Body returns the module's entry block.
func (m *Module) Body() *Block { return m.op.Regions[0].Entry() }

// Funcs returns all builtin.func ops in the module body, in order.
func (m *Module) Funcs() []*Op {
	var fns []*Op
	for _, op := range m.Body().Ops {
		if op.Is("builtin.func") {
			fns = append(fns, op)
		}
	}
	return fns
}

// FindFunc returns the builtin.func with the given sym_name, or nil.
func (m *Module) FindFunc(name string) *Op {
	for _, fn := range m.Funcs() {
		if GetString(fn.Attrs, "sym_name", "") == name {
			return fn
		}
	}
	return nil
}

// Walk visits every op in the module in pre-order (op before its regions).
func (m *Module) Walk(fn func(*Op)) { walkOp(m.op, fn) }

// WalkBlocks visits every block in the module in pre-order.
func (m *Module) WalkBlocks(fn func(*Block)) {
	m.Walk(func(op *Op) {
		for _, r := range op.Regions {
			for _, b := range r.Blocks {
				fn(b)
			}
		}
	})
}

func walkOp(op *Op, fn func(*Op)) {
	fn(op)
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			for _, nested := range b.Ops {
				walkOp(nested, fn)
			}
		}
	}
}

// CountOps returns the number of ops with the qualified name in the module.
func (m *Module) CountOps(qualified string) int {
	n := 0
	m.Walk(func(op *Op) {
		if op.FullName() == qualified {
			n++
		}
	})
	return n
}

// Builder constructs ops at an insertion point.
type Builder struct {
	ctx   *Context
	block *Block
}

// NewBuilder returns a builder inserting at the end of block.
func NewBuilder(ctx *Context, block *Block) *Builder {
	return &Builder{ctx: ctx, block: block}
}

// SetInsertionBlock moves the insertion point.
func (b *Builder) SetInsertionBlock(blk *Block) { b.block = blk }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.block }

// Context returns the builder's context.
func (b *Builder) Context() *Context { return b.ctx }

// Create builds an op with the given qualified name, operands, result types
// and attributes, appends it to the insertion block, and returns it.
func (b *Builder) Create(qualified string, operands []*Value, resultTypes []Type, attrs map[string]Attribute) *Op {
	dialect, name, ok := splitQualified(qualified)
	if !ok {
		panic(fmt.Sprintf("mlir: op name %q is not dialect-qualified", qualified))
	}
	op := &Op{ctx: b.ctx, Dialect: dialect, Name: name, Operands: operands}
	if attrs != nil {
		op.Attrs = attrs
	}
	for i, rt := range resultTypes {
		op.Results = append(op.Results, &Value{id: b.ctx.newID(), typ: rt, def: op, idx: i})
	}
	b.block.push(op)
	return op
}

// CreateWithRegions is Create plus n fresh regions.
func (b *Builder) CreateWithRegions(qualified string, operands []*Value, resultTypes []Type, attrs map[string]Attribute, nRegions int) *Op {
	op := b.Create(qualified, operands, resultTypes, attrs)
	for i := 0; i < nRegions; i++ {
		r := &Region{parent: op}
		r.Entry()
		op.Regions = append(op.Regions, r)
	}
	return op
}

// Func creates a builtin.func with the signature and returns (op, entry
// block, builder positioned in the entry block).
func (b *Builder) Func(name string, sig FunctionType) (*Op, *Block, *Builder) {
	op := b.CreateWithRegions("builtin.func", nil, nil, map[string]Attribute{
		"sym_name": StringAttr(name),
		"type":     TypeAttr{Type: sig},
	}, 1)
	entry := op.Regions[0].Entry()
	for i, in := range sig.Inputs {
		entry.AddArg(b.ctx, in, fmt.Sprintf("arg%d", i))
	}
	return op, entry, NewBuilder(b.ctx, entry)
}

// ConstantFloat emits builtin.constant with a float value.
func (b *Builder) ConstantFloat(v float64, t Type) *Value {
	op := b.Create("builtin.constant", nil, []Type{t}, map[string]Attribute{"value": FloatAttr(v)})
	return op.Result(0)
}

// ConstantInt emits builtin.constant with an integer value.
func (b *Builder) ConstantInt(v int64, t Type) *Value {
	op := b.Create("builtin.constant", nil, []Type{t}, map[string]Attribute{"value": IntAttr(v)})
	return op.Result(0)
}

// Return emits builtin.return.
func (b *Builder) Return(vals ...*Value) *Op {
	return b.Create("builtin.return", vals, nil, nil)
}

func splitQualified(q string) (dialect, name string, ok bool) {
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return q[:i], q[i+1:], i > 0 && i < len(q)-1
		}
	}
	return "", "", false
}
