package mlir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module in generic MLIR-like textual form. The output is
// deterministic (attributes sorted by key, values numbered in creation
// order), so it is usable in golden tests.
func (m *Module) String() string {
	p := &printer{names: make(map[*Value]string)}
	p.printOp(m.op, 0)
	return p.b.String()
}

// String renders a single op subtree.
func (o *Op) String() string {
	p := &printer{names: make(map[*Value]string)}
	// Make operands referencable even when printing a detached subtree.
	for _, v := range o.Operands {
		p.nameOf(v)
	}
	p.printOp(o, 0)
	return p.b.String()
}

type printer struct {
	b     strings.Builder
	names map[*Value]string
	next  int
}

func (p *printer) nameOf(v *Value) string {
	if n, ok := p.names[v]; ok {
		return n
	}
	var n string
	if v.name != "" {
		n = fmt.Sprintf("%%%s_%d", v.name, p.next)
	} else {
		n = fmt.Sprintf("%%%d", p.next)
	}
	p.next++
	p.names[v] = n
	return n
}

func (p *printer) printOp(op *Op, indent int) {
	pad := strings.Repeat("  ", indent)
	p.b.WriteString(pad)

	if len(op.Results) > 0 {
		for i, r := range op.Results {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(p.nameOf(r))
		}
		p.b.WriteString(" = ")
	}

	fmt.Fprintf(&p.b, "%q", op.FullName())

	p.b.WriteString("(")
	for i, operand := range op.Operands {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(p.nameOf(operand))
	}
	p.b.WriteString(")")

	if len(op.Attrs) > 0 {
		keys := make([]string, 0, len(op.Attrs))
		for k := range op.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		p.b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				p.b.WriteString(", ")
			}
			fmt.Fprintf(&p.b, "%s = %s", k, op.Attrs[k].String())
		}
		p.b.WriteString("}")
	}

	if len(op.Regions) > 0 {
		p.b.WriteString(" (")
		for ri, region := range op.Regions {
			if ri > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString("{\n")
			for bi, block := range region.Blocks {
				if bi > 0 || len(block.Args) > 0 {
					p.b.WriteString(pad + "  ")
					fmt.Fprintf(&p.b, "^bb%d(", bi)
					for ai, arg := range block.Args {
						if ai > 0 {
							p.b.WriteString(", ")
						}
						fmt.Fprintf(&p.b, "%s: %s", p.nameOf(arg), arg.Type())
					}
					p.b.WriteString("):\n")
				}
				for _, nested := range block.Ops {
					p.printOp(nested, indent+1)
				}
			}
			p.b.WriteString(pad + "}")
		}
		p.b.WriteString(")")
	}

	// Trailing type signature.
	p.b.WriteString(" : (")
	for i, operand := range op.Operands {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(operand.Type().String())
	}
	p.b.WriteString(") -> (")
	for i, r := range op.Results {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(r.Type().String())
	}
	p.b.WriteString(")\n")
}
