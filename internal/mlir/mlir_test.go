package mlir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestContextDialectRegistration(t *testing.T) {
	ctx := NewContext()
	if ctx.Dialect("builtin") == nil {
		t.Fatal("builtin dialect must be pre-registered")
	}
	d := ctx.RegisterDialect("teil")
	if again := ctx.RegisterDialect("teil"); again != d {
		t.Error("re-registering a dialect must return the same instance")
	}
	names := ctx.DialectNames()
	if len(names) != 2 || names[0] != "builtin" || names[1] != "teil" {
		t.Errorf("DialectNames = %v, want [builtin teil]", names)
	}
}

func TestOpRegistrationQualifiesName(t *testing.T) {
	ctx := NewContext()
	d := ctx.RegisterDialect("x")
	d.RegisterOp(&OpInfo{Name: "foo", NumResults: 1})
	info := d.OpInfo("foo")
	if info == nil || info.Name != "x.foo" {
		t.Fatalf("OpInfo name = %+v, want qualified x.foo", info)
	}
}

func TestModuleBuildAndVerify(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "test")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{Inputs: []Type{F64()}, Results: []Type{F64()}})
	c := fb.ConstantFloat(2.0, F64())
	fb.Return(c)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.FindFunc("f") == nil {
		t.Error("FindFunc(f) returned nil")
	}
	if m.FindFunc("missing") != nil {
		t.Error("FindFunc(missing) should return nil")
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "bad")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	// Manufacture a value that was never defined in scope.
	orphanOp := &Op{ctx: ctx, Dialect: "builtin", Name: "constant"}
	orphan := &Value{id: ctx.newID(), typ: F64(), def: orphanOp}
	fb.Create("builtin.return", []*Value{orphan}, nil, nil)
	if err := m.Verify(); err == nil {
		t.Fatal("Verify must reject use of undefined value")
	}
}

func TestVerifyRejectsMisplacedTerminator(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "bad")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	fb.Return()
	fb.ConstantFloat(1, F64()) // op after terminator
	err := m.Verify()
	if err == nil {
		t.Fatal("Verify must reject terminator before last op")
	}
	if !strings.Contains(err.Error(), "terminator") {
		t.Errorf("error %v should mention terminator", err)
	}
}

func TestVerifyArity(t *testing.T) {
	ctx := NewContext()
	d := ctx.RegisterDialect("x")
	d.RegisterOp(&OpInfo{Name: "pair", MinOperands: 2, MaxOperands: 2, NumResults: 1})
	m := NewModule(ctx, "m")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	v := fb.ConstantFloat(1, F64())
	fb.Create("x.pair", []*Value{v}, []Type{F64()}, nil) // one operand, wants two
	fb.Return()
	if err := m.Verify(); err == nil {
		t.Fatal("Verify must reject wrong operand arity")
	}
}

func TestVerifySemanticHook(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "m")
	b := NewBuilder(ctx, m.Body())
	// builtin.constant without a value attribute must fail.
	op := b.Create("builtin.constant", nil, []Type{F64()}, nil)
	_ = op
	if err := m.Verify(); err == nil {
		t.Fatal("builtin.constant without value must fail verification")
	}
}

func TestPrinterDeterministic(t *testing.T) {
	build := func() *Module {
		ctx := NewContext()
		m := NewModule(ctx, "p")
		b := NewBuilder(ctx, m.Body())
		_, _, fb := b.Func("f", FunctionType{Inputs: []Type{F64(), F64()}})
		x := fb.ConstantFloat(1.5, F64())
		y := fb.ConstantInt(3, I32())
		op := fb.Create("builtin.call", []*Value{x, y}, []Type{F64()},
			map[string]Attribute{"callee": StringAttr("g"), "zeta": IntAttr(1), "alpha": IntAttr(2)})
		fb.Return(op.Result(0))
		return m
	}
	a, b := build().String(), build().String()
	if a != b {
		t.Fatalf("printer output is nondeterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"builtin.func"`) || !strings.Contains(a, `alpha = 2, callee = "g", zeta = 1`) {
		t.Errorf("unexpected printed form:\n%s", a)
	}
}

func TestWalkAndCount(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "w")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	fb.ConstantFloat(1, F64())
	fb.ConstantFloat(2, F64())
	fb.Return()
	if got := m.CountOps("builtin.constant"); got != 2 {
		t.Errorf("CountOps(constant) = %d, want 2", got)
	}
	n := 0
	m.Walk(func(*Op) { n++ })
	// module + func + 2 constants + return
	if n != 5 {
		t.Errorf("Walk visited %d ops, want 5", n)
	}
}

func TestDeadCodeElim(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "dce")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	used := fb.ConstantFloat(1, F64())
	fb.ConstantFloat(2, F64()) // dead
	fb.Return(used)
	pm := NewPassManager().Add(DeadCodeElim())
	if err := pm.Run(m); err != nil {
		t.Fatalf("dce: %v", err)
	}
	if got := m.CountOps("builtin.constant"); got != 1 {
		t.Errorf("after DCE %d constants remain, want 1", got)
	}
	if len(pm.Stats) != 1 || pm.Stats[0].Pass != "dce" {
		t.Errorf("pass stats not recorded: %+v", pm.Stats)
	}
}

func TestPassManagerVerifiesBetweenPasses(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "pm")
	pm := NewPassManager().AddFunc("break-it", func(m *Module) error {
		b := NewBuilder(ctx, m.Body())
		b.Create("builtin.constant", nil, []Type{F64()}, nil) // invalid: no value
		return nil
	})
	if err := pm.Run(m); err == nil {
		t.Fatal("PassManager must fail verification after a breaking pass")
	}
}

func TestReplaceAllUses(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "r")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	a := fb.ConstantFloat(1, F64())
	c := fb.ConstantFloat(2, F64())
	ret := fb.Return(a)
	m.ReplaceAllUses(a, c)
	if ret.Operand(0) != c {
		t.Error("ReplaceAllUses did not rewrite the return operand")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{F64(), "f64"},
		{BF16(), "bf16"},
		{I32(), "i32"},
		{IntegerType{Width: 8, Unsigned: true}, "ui8"},
		{I1(), "i1"},
		{Index(), "index"},
		{TensorOf(F64(), 4, 8), "tensor<4x8xf64>"},
		{MemRefOf(F32(), "hbm", 128), `memref<128xf32, "hbm">`},
		{StreamType{Elem: F32(), Depth: 16}, "stream<f32, 16>"},
		{FixedType{IntBits: 8, FracBits: 8}, "!base2.fixed<8,8>"},
		{PositType{N: 16, ES: 1}, "!base2.posit<16,1>"},
		{TensorType{Shape: []int{-1, 3}, Elem: F64()}, "tensor<?x3xf64>"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestBitWidthOf(t *testing.T) {
	cases := []struct {
		t    Type
		want int
	}{
		{F64(), 64}, {F32(), 32}, {BF16(), 16}, {I32(), 32}, {I1(), 1},
		{Index(), 64}, {FixedType{IntBits: 6, FracBits: 10}, 16},
		{PositType{N: 16, ES: 1}, 16}, {TensorOf(F64(), 2), 0},
	}
	for _, c := range cases {
		if got := BitWidthOf(c.t); got != c.want {
			t.Errorf("BitWidthOf(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypesEqualProperty(t *testing.T) {
	// Property: TensorOf(elem, dims...) equals itself structurally and
	// differs when any dim changes.
	f := func(a, b uint8) bool {
		da, db := int(a%32)+1, int(b%32)+1
		t1 := TensorOf(F64(), da, db)
		t2 := TensorOf(F64(), da, db)
		t3 := TensorOf(F64(), da, db+1)
		return TypesEqual(t1, t2) && !TypesEqual(t1, t3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrHelpers(t *testing.T) {
	attrs := map[string]Attribute{
		"i": IntAttr(7), "s": StringAttr("x"), "b": BoolAttr(true), "f": FloatAttr(2.5),
	}
	if GetInt(attrs, "i", 0) != 7 || GetInt(attrs, "missing", 9) != 9 {
		t.Error("GetInt failed")
	}
	if GetString(attrs, "s", "") != "x" || GetString(attrs, "missing", "d") != "d" {
		t.Error("GetString failed")
	}
	if !GetBool(attrs, "b", false) || GetBool(attrs, "missing", true) != true {
		t.Error("GetBool failed")
	}
	if GetFloat(attrs, "f", 0) != 2.5 {
		t.Error("GetFloat failed")
	}
	dict := DictAttr{"z": IntAttr(1), "a": IntAttr(2)}
	if dict.String() != "{a = 2, z = 1}" {
		t.Errorf("DictAttr not sorted: %s", dict.String())
	}
}

func TestFunctionTypeString(t *testing.T) {
	ft := FunctionType{Inputs: []Type{F64(), I32()}, Results: []Type{F32()}}
	if got := ft.String(); got != "(f64, i32) -> (f32)" {
		t.Errorf("FunctionType.String = %q", got)
	}
}

func TestBlockArgsAndParents(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "x")
	b := NewBuilder(ctx, m.Body())
	fn, entry, fb := b.Func("f", FunctionType{Inputs: []Type{F64()}})
	if len(entry.Args) != 1 || !entry.Args[0].IsBlockArg() {
		t.Fatal("Func must materialize block arguments")
	}
	c := fb.ConstantFloat(0, F64())
	if c.DefiningOp() == nil || c.DefiningOp().ParentOp() != fn {
		t.Error("ParentOp chain broken")
	}
	if fn.ParentBlock() != m.Body() {
		t.Error("func's parent block must be module body")
	}
}
