package mlir

import (
	"fmt"
)

// VerifyError describes a verification failure at a specific op.
type VerifyError struct {
	Op  string
	Err error
}

func (e *VerifyError) Error() string { return fmt.Sprintf("verify %s: %v", e.Op, e.Err) }

func valueLabel(v *Value) string {
	if v.name != "" {
		return v.name
	}
	return fmt.Sprintf("v%d", v.id)
}

// Unwrap returns the underlying cause.
func (e *VerifyError) Unwrap() error { return e.Err }

// Verify checks structural validity of the whole module:
//
//  1. every operand is defined before use (SSA dominance within a block, or
//     is an argument of an enclosing block),
//  2. registered ops respect their operand/result/region arities,
//  3. terminators appear only in last position,
//  4. per-op semantic verifiers pass.
//
// Unregistered ops (unknown dialects) are structurally checked only, matching
// MLIR's "unregistered dialects allowed" mode used during staged lowering.
func (m *Module) Verify() error {
	scope := make(map[*Value]bool)
	return verifyOp(m.op, scope)
}

func verifyOp(op *Op, visible map[*Value]bool) error {
	for i, operand := range op.Operands {
		if operand == nil {
			return &VerifyError{Op: op.FullName(), Err: fmt.Errorf("operand %d is nil", i)}
		}
		if !visible[operand] {
			return &VerifyError{Op: op.FullName(),
				Err: fmt.Errorf("operand %d (%%%s) used before definition", i, valueLabel(operand))}
		}
	}

	info := op.ctx.lookupOp(op.Dialect, op.Name)
	if info != nil {
		if err := checkArity(op, info); err != nil {
			return &VerifyError{Op: op.FullName(), Err: err}
		}
		if info.Verify != nil {
			if err := info.Verify(op); err != nil {
				return &VerifyError{Op: op.FullName(), Err: err}
			}
		}
	}

	for _, region := range op.Regions {
		for _, block := range region.Blocks {
			// Values visible inside a nested block: everything visible at the
			// op, plus the block's own arguments, plus (incrementally) each
			// op's results. Isolation is not enforced: EVEREST dialects use
			// implicit capture like MLIR's affine/scf regions.
			inner := make(map[*Value]bool, len(visible)+len(block.Args))
			for v := range visible {
				inner[v] = true
			}
			for _, a := range block.Args {
				inner[a] = true
			}
			for i, nested := range block.Ops {
				nestedInfo := nested.ctx.lookupOp(nested.Dialect, nested.Name)
				if nestedInfo != nil && nestedInfo.Terminator && i != len(block.Ops)-1 {
					return &VerifyError{Op: nested.FullName(),
						Err: fmt.Errorf("terminator is not the last op in its block")}
				}
				if err := verifyOp(nested, inner); err != nil {
					return err
				}
				for _, r := range nested.Results {
					inner[r] = true
				}
			}
		}
	}

	// Results become visible to the parent scope after the op completes.
	for _, r := range op.Results {
		visible[r] = true
	}
	return nil
}

func checkArity(op *Op, info *OpInfo) error {
	n := len(op.Operands)
	if info.MaxOperands >= 0 && (n < info.MinOperands || n > info.MaxOperands) {
		return fmt.Errorf("expected between %d and %d operands, got %d",
			info.MinOperands, info.MaxOperands, n)
	}
	if info.MaxOperands < 0 && n < info.MinOperands {
		return fmt.Errorf("expected at least %d operands, got %d", info.MinOperands, n)
	}
	if info.NumResults >= 0 && len(op.Results) != info.NumResults {
		return fmt.Errorf("expected %d results, got %d", info.NumResults, len(op.Results))
	}
	if info.NumRegions > 0 && len(op.Regions) != info.NumRegions {
		return fmt.Errorf("expected %d regions, got %d", info.NumRegions, len(op.Regions))
	}
	return nil
}
