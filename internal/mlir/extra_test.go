package mlir

import (
	"strings"
	"testing"
	"time"
)

func TestPassManagerDumpAndPipelineString(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "dump")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	v := fb.ConstantFloat(1, F64())
	fb.Return(v)

	var dump strings.Builder
	pm := NewPassManager()
	pm.DumpEachTo = &dump
	pm.AddFunc("noop", func(*Module) error { return nil }).Add(DeadCodeElim())
	if got := pm.PipelineString(); got != "noop,dce" {
		t.Errorf("PipelineString = %q", got)
	}
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	text := dump.String()
	if !strings.Contains(text, "after noop") || !strings.Contains(text, "after dce") {
		t.Error("dump must include per-pass sections")
	}
	for _, st := range pm.Stats {
		if st.Duration < 0 || st.Duration > time.Minute {
			t.Errorf("implausible pass duration %v", st.Duration)
		}
		if st.OpsAfter <= 0 {
			t.Errorf("OpsAfter not recorded for %s", st.Pass)
		}
	}
}

func TestPassManagerErrorPropagation(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "err")
	pm := NewPassManager().AddFunc("boom", func(*Module) error {
		return &VerifyError{Op: "x", Err: errSentinel}
	})
	err := pm.Run(m)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("pass error must name the pass: %v", err)
	}
	if len(pm.Stats) != 1 || pm.Stats[0].Err == nil {
		t.Error("failing pass must record its error in stats")
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}

func TestVerifyErrorUnwrap(t *testing.T) {
	ve := &VerifyError{Op: "a.b", Err: errSentinel}
	if ve.Unwrap() != errSentinel {
		t.Error("Unwrap broken")
	}
	if !strings.Contains(ve.Error(), "a.b") {
		t.Error("Error() must name the op")
	}
}

func TestOpStringDetached(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "s")
	b := NewBuilder(ctx, m.Body())
	_, _, fb := b.Func("f", FunctionType{})
	x := fb.ConstantFloat(1, F64())
	op := fb.Create("builtin.call", []*Value{x}, []Type{F64()},
		map[string]Attribute{"callee": StringAttr("g")})
	text := op.String()
	if !strings.Contains(text, "builtin.call") || !strings.Contains(text, `callee = "g"`) {
		t.Errorf("op String missing parts: %s", text)
	}
}

func TestRegionAndBlockHelpers(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "r")
	b := NewBuilder(ctx, m.Body())
	op := b.CreateWithRegions("builtin.module", nil, nil,
		map[string]Attribute{"sym_name": StringAttr("nested")}, 1)
	r := op.Regions[0]
	if r.ParentOp() != op {
		t.Error("ParentOp broken")
	}
	blk2 := r.AddBlock()
	if len(r.Blocks) != 2 || blk2.Region() != r {
		t.Error("AddBlock broken")
	}
	// Terminator detection on an empty block.
	if blk2.Terminator() != nil {
		t.Error("empty block has no terminator")
	}
	bb := NewBuilder(ctx, blk2)
	bb.Return()
	if blk2.Terminator() == nil {
		t.Error("return must be detected as terminator")
	}
}

func TestEraseOpsAndValueHelpers(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "e")
	b := NewBuilder(ctx, m.Body())
	_, entry, fb := b.Func("f", FunctionType{Inputs: []Type{F64()}})
	arg := entry.Args[0]
	if arg.DefiningOp() != nil || !arg.IsBlockArg() {
		t.Error("block arg properties wrong")
	}
	if arg.ID() <= 0 {
		t.Error("value ids must be positive")
	}
	c := fb.ConstantFloat(2, F64())
	c.SetName("two")
	if c.Name() != "two" {
		t.Error("SetName broken")
	}
	c.SetType(F32())
	if c.Type().String() != "f32" {
		t.Error("SetType broken")
	}
	removed := m.EraseOps(func(op *Op) bool { return op.Is("builtin.constant") })
	if removed != 1 {
		t.Errorf("EraseOps removed %d, want 1", removed)
	}
}

func TestTypeMiscellany(t *testing.T) {
	if (NoneType{}).String() != "none" {
		t.Error("NoneType string")
	}
	st := StreamType{Elem: F64()}
	if st.String() != "stream<f64>" {
		t.Errorf("depthless stream = %q", st.String())
	}
	mr := MemRefOf(F64(), "", 4)
	if mr.String() != "memref<4xf64>" {
		t.Errorf("spaceless memref = %q", mr.String())
	}
	if mr.NumElements() != 4 {
		t.Error("memref NumElements")
	}
	dyn := MemRefType{Shape: []int{-1}, Elem: F64()}
	if dyn.NumElements() != -1 {
		t.Error("dynamic memref NumElements must be -1")
	}
	tt := TensorOf(F64(), 2, 3)
	if tt.NumElements() != 6 || tt.Rank() != 2 {
		t.Error("tensor helpers")
	}
	dynT := TensorType{Shape: []int{-1}, Elem: F64()}
	if dynT.NumElements() != -1 {
		t.Error("dynamic tensor NumElements must be -1")
	}
	if ElemOf(tt).String() != "f64" || ElemOf(F32()).String() != "f32" {
		t.Error("ElemOf")
	}
	if len(ShapeOf(tt)) != 2 || ShapeOf(F64()) != nil {
		t.Error("ShapeOf")
	}
	if ElemOf(StreamType{Elem: I32()}).String() != "i32" {
		t.Error("ElemOf stream")
	}
	if !TypesEqual(nil, nil) || TypesEqual(nil, F64()) {
		t.Error("TypesEqual nil handling")
	}
}

func TestAttrStrings(t *testing.T) {
	if IntAttr(-3).String() != "-3" {
		t.Error("IntAttr")
	}
	if FloatAttr(2.5).String() != "2.5" {
		t.Error("FloatAttr")
	}
	if BoolAttr(true).String() != "true" {
		t.Error("BoolAttr")
	}
	if (TypeAttr{Type: F64()}).String() != "f64" {
		t.Error("TypeAttr")
	}
	arr := IntsAttr(1, 2, 3)
	if arr.String() != "[1, 2, 3]" {
		t.Errorf("ArrayAttr = %q", arr.String())
	}
	sarr := StringsAttr("a", "b")
	if sarr.String() != `["a", "b"]` {
		t.Errorf("StringsAttr = %q", sarr.String())
	}
	small := DenseAttr{Shape: []int{2}, Elem: F64(), Data: []float64{1, 2}}
	if !strings.Contains(small.String(), "[1, 2]") {
		t.Errorf("small DenseAttr = %q", small.String())
	}
	big := DenseAttr{Shape: []int{100}, Elem: F64(), Data: make([]float64, 100)}
	if !strings.Contains(big.String(), "...100 values...") {
		t.Errorf("big DenseAttr = %q", big.String())
	}
}

func TestModuleHelpers(t *testing.T) {
	ctx := NewContext()
	m := NewModule(ctx, "helpers")
	if m.Name() != "helpers" || m.Context() != ctx || m.Op() == nil {
		t.Error("module accessors broken")
	}
	b := NewBuilder(ctx, m.Body())
	if b.Context() != ctx || b.Block() != m.Body() {
		t.Error("builder accessors broken")
	}
	fn1, _, _ := b.Func("a", FunctionType{})
	b.Func("b", FunctionType{})
	if len(m.Funcs()) != 2 || m.Funcs()[0] != fn1 {
		t.Error("Funcs listing broken")
	}
	blocks := 0
	m.WalkBlocks(func(*Block) { blocks++ })
	if blocks != 3 { // module body + two func bodies
		t.Errorf("WalkBlocks visited %d, want 3", blocks)
	}
}

func TestBuilderPanicsOnUnqualifiedName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Create with unqualified name must panic")
		}
	}()
	ctx := NewContext()
	m := NewModule(ctx, "p")
	NewBuilder(ctx, m.Body()).Create("noqualifier", nil, nil, nil)
}
