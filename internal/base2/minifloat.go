package base2

import (
	"fmt"
	"math"
)

// MiniFloat is a reduced-precision IEEE-754-style binary float with ExpBits
// exponent bits and FracBits fraction bits (plus a sign bit). It models the
// fp16/bf16 datapaths the base2 dialect lowers to, with gradual underflow
// (subnormals), signed infinities, and NaN.
type MiniFloat struct {
	Label    string
	ExpBits  int
	FracBits int
}

// FP16 is IEEE binary16.
func FP16() MiniFloat { return MiniFloat{Label: "f16", ExpBits: 5, FracBits: 10} }

// BF16 is bfloat16 (truncated binary32).
func BF16() MiniFloat { return MiniFloat{Label: "bf16", ExpBits: 8, FracBits: 7} }

// FP8E4M3 is the 8-bit e4m3 format used for ML inference datapaths.
func FP8E4M3() MiniFloat { return MiniFloat{Label: "fp8e4m3", ExpBits: 4, FracBits: 3} }

// Name implements Format.
func (f MiniFloat) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return fmt.Sprintf("float<e%d,m%d>", f.ExpBits, f.FracBits)
}

// Bits implements Format.
func (f MiniFloat) Bits() int { return 1 + f.ExpBits + f.FracBits }

// Quantize implements Format.
func (f MiniFloat) Quantize(x float64) float64 { return f.Decode(f.Encode(x)) }

func (f MiniFloat) bias() int        { return (1 << (f.ExpBits - 1)) - 1 }
func (f MiniFloat) maxExpField() int { return (1 << f.ExpBits) - 1 }

// Encode rounds x to the nearest representable value (ties to even) and
// returns the bit pattern.
func (f MiniFloat) Encode(x float64) uint64 {
	signBit := uint64(0)
	if math.Signbit(x) {
		signBit = uint64(1) << (f.ExpBits + f.FracBits)
	}
	if math.IsNaN(x) {
		// Quiet NaN: exponent all ones, MSB of fraction set.
		return signBit | uint64(f.maxExpField())<<f.FracBits | uint64(1)<<(f.FracBits-1)
	}
	if math.IsInf(x, 0) {
		return signBit | uint64(f.maxExpField())<<f.FracBits
	}
	ax := math.Abs(x)
	if ax == 0 {
		return signBit
	}

	m, e2 := math.Frexp(ax) // ax = m * 2^e2, m in [0.5,1)
	scale := e2 - 1
	mant := m * 2 // [1,2)

	minNormExp := 1 - f.bias()
	maxNormExp := f.maxExpField() - 1 - f.bias()

	if scale < minNormExp {
		// Subnormal range: value = fracField * 2^(minNormExp - FracBits).
		q := math.RoundToEven(ax * math.Ldexp(1, f.FracBits-minNormExp))
		if q == 0 {
			return signBit // underflow to zero
		}
		if q >= math.Ldexp(1, f.FracBits) {
			// Rounded up into the smallest normal.
			return signBit | uint64(1)<<f.FracBits
		}
		return signBit | uint64(q)
	}
	if scale > maxNormExp {
		return signBit | uint64(f.maxExpField())<<f.FracBits // overflow to Inf
	}

	frac := math.RoundToEven((mant - 1) * math.Ldexp(1, f.FracBits))
	expField := scale + f.bias()
	if frac >= math.Ldexp(1, f.FracBits) {
		frac = 0
		expField++
		if expField >= f.maxExpField() {
			return signBit | uint64(f.maxExpField())<<f.FracBits // overflow to Inf
		}
	}
	return signBit | uint64(expField)<<f.FracBits | uint64(frac)
}

// Decode returns the float64 value of a bit pattern.
func (f MiniFloat) Decode(bits uint64) float64 {
	width := uint(f.Bits())
	bits &= (uint64(1) << width) - 1
	sign := bits>>(width-1) == 1
	expField := int(bits>>f.FracBits) & f.maxExpField()
	frac := bits & ((uint64(1) << f.FracBits) - 1)

	var v float64
	switch {
	case expField == f.maxExpField():
		if frac != 0 {
			return math.NaN()
		}
		v = math.Inf(1)
	case expField == 0:
		v = float64(frac) * math.Ldexp(1, 1-f.bias()-f.FracBits)
	default:
		mant := 1 + float64(frac)*math.Ldexp(1, -f.FracBits)
		v = mant * math.Ldexp(1, expField-f.bias())
	}
	if sign {
		return -v
	}
	return v
}

// MaxValue returns the largest finite representable value.
func (f MiniFloat) MaxValue() float64 {
	return f.Decode(uint64(f.maxExpField()-1)<<f.FracBits | ((uint64(1) << f.FracBits) - 1))
}

// MinNormal returns the smallest positive normal value.
func (f MiniFloat) MinNormal() float64 { return f.Decode(uint64(1) << f.FracBits) }
