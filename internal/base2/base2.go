// Package base2 implements the custom binary numeral types of the EVEREST
// base2 MLIR dialect (Friebel et al., "BASE2: An IR for Binary Numeral
// Types", HEART 2023; paper §V-B): software models of signed fixed-point,
// posit⟨n,es⟩, and reduced-precision IEEE-style minifloats (float16,
// bfloat16).
//
// The package provides a uniform Format interface used by the HLS resource
// estimator and the E4 data-format experiment: Quantize maps a float64
// through the format and back, exposing exactly the rounding a hardware
// implementation of that format would apply.
package base2

import (
	"fmt"
	"math"
)

// Format is a value format implementable in FPGA logic.
type Format interface {
	// Name is a short identifier ("fixed<8,8>", "posit<16,1>", "bf16").
	Name() string
	// Bits is the storage width in bits.
	Bits() int
	// Quantize rounds x to the nearest representable value (ties to even
	// where the format defines it) and returns it as float64.
	Quantize(x float64) float64
}

// Float64 is the identity format (the fp64 baseline of experiment E4).
type Float64 struct{}

// Name implements Format.
func (Float64) Name() string { return "f64" }

// Bits implements Format.
func (Float64) Bits() int { return 64 }

// Quantize implements Format (identity).
func (Float64) Quantize(x float64) float64 { return x }

// Float32 quantizes through IEEE binary32.
type Float32 struct{}

// Name implements Format.
func (Float32) Name() string { return "f32" }

// Bits implements Format.
func (Float32) Bits() int { return 32 }

// Quantize implements Format.
func (Float32) Quantize(x float64) float64 { return float64(float32(x)) }

// QuantizeSlice quantizes xs through f into a new slice.
func QuantizeSlice(f Format, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.Quantize(x)
	}
	return out
}

// ErrorStats summarizes quantization error over a data set.
type ErrorStats struct {
	MaxAbs  float64
	RMSE    float64
	MaxRel  float64 // relative to |x|, ignoring |x| < relFloor
	Samples int
}

const relFloor = 1e-30

// MeasureError quantizes xs through f and reports the error statistics used
// by the E4 accuracy/resource sweep.
func MeasureError(f Format, xs []float64) ErrorStats {
	var st ErrorStats
	st.Samples = len(xs)
	if len(xs) == 0 {
		return st
	}
	var sq float64
	for _, x := range xs {
		q := f.Quantize(x)
		d := math.Abs(q - x)
		if d > st.MaxAbs {
			st.MaxAbs = d
		}
		sq += d * d
		if ax := math.Abs(x); ax > relFloor {
			if rel := d / ax; rel > st.MaxRel {
				st.MaxRel = rel
			}
		}
	}
	st.RMSE = math.Sqrt(sq / float64(len(xs)))
	return st
}

// String renders the stats compactly.
func (s ErrorStats) String() string {
	return fmt.Sprintf("maxabs=%.3g rmse=%.3g maxrel=%.3g n=%d", s.MaxAbs, s.RMSE, s.MaxRel, s.Samples)
}
