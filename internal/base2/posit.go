package base2

import (
	"fmt"
	"math"
)

// PositFormat is a posit⟨N,ES⟩ universal number format (Gustafson type III
// unum), as modelled by the EVEREST base2 dialect for accelerator datapaths
// (cf. Murillo et al., "Generating Posit-Based Accelerators With High-Level
// Synthesis", paper ref [12]).
//
// Supported widths are 3..32 bits with 0..4 exponent bits. Encoding uses
// round-to-nearest-even on the posit word, never rounds a nonzero value to
// zero or NaR, and saturates at maxpos/minpos, per the posit standard.
type PositFormat struct {
	N  int
	ES int
}

// NewPositFormat validates and returns a posit format.
func NewPositFormat(n, es int) (PositFormat, error) {
	p := PositFormat{N: n, ES: es}
	if n < 3 || n > 32 || es < 0 || es > 4 {
		return p, fmt.Errorf("base2: invalid posit<%d,%d>", n, es)
	}
	return p, nil
}

// Name implements Format.
func (p PositFormat) Name() string { return fmt.Sprintf("posit<%d,%d>", p.N, p.ES) }

// Bits implements Format.
func (p PositFormat) Bits() int { return p.N }

// Quantize implements Format.
func (p PositFormat) Quantize(x float64) float64 { return p.Decode(p.Encode(x)) }

// NaR returns the Not-a-Real bit pattern (sign bit only).
func (p PositFormat) NaR() uint64 { return 1 << (p.N - 1) }

func (p PositFormat) mask() uint64 { return (uint64(1) << p.N) - 1 }

// Encode rounds x to the nearest posit and returns its bit pattern.
func (p PositFormat) Encode(x float64) uint64 {
	if x == 0 {
		return 0
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return p.NaR()
	}
	sign := x < 0
	ax := math.Abs(x)

	m, e2 := math.Frexp(ax) // ax = m * 2^e2, m in [0.5, 1)
	scale := e2 - 1
	mant := m * 2 // in [1, 2)
	// Exact 52-bit fraction of the normalized mantissa.
	frac52 := uint64((mant - 1) * (1 << 52))

	pow2es := 1 << p.ES
	k := floorDiv(scale, pow2es)
	eexp := scale - k*pow2es // in [0, pow2es)

	available := p.N - 1
	// Regime run length (before the terminator bit). When the run alone
	// fills the payload the value saturates at maxpos/minpos; a run of
	// available-1 bits plus terminator still fits (with no exp/frac bits).
	var runLen int
	if k >= 0 {
		runLen = k + 1
	} else {
		runLen = -k
	}

	var payload uint64
	if runLen >= available {
		if k >= 0 {
			payload = (uint64(1) << available) - 1
		} else {
			payload = 1
		}
	} else {
		rl := runLen + 1       // including terminator
		keep := available - rl // bits available for exponent+fraction
		var regime uint64
		if k >= 0 {
			regime = ((uint64(1) << (k + 1)) - 1) << 1 // 1...10
		} else {
			regime = 1 // 0...01
		}
		content := (uint64(eexp) << 52) | frac52 // width = ES + 52
		cw := p.ES + 52
		shift := cw - keep // always > 0 for N <= 32
		top := content >> shift
		remainder := content & ((uint64(1) << shift) - 1)
		half := uint64(1) << (shift - 1)
		payload = (regime << keep) | top
		if remainder > half || (remainder == half && payload&1 == 1) {
			payload++
		}
		if payload >= uint64(1)<<available {
			payload = (uint64(1) << available) - 1 // saturate, never wrap to NaR
		}
	}
	if payload == 0 {
		payload = 1 // never round a nonzero value to zero
	}
	if sign {
		return ((uint64(1) << p.N) - payload) & p.mask()
	}
	return payload
}

// Decode returns the real value of a posit bit pattern. NaR decodes to NaN.
func (p PositFormat) Decode(bits uint64) float64 {
	bits &= p.mask()
	if bits == 0 {
		return 0
	}
	if bits == p.NaR() {
		return math.NaN()
	}
	negative := bits>>(p.N-1) == 1
	if negative {
		bits = ((uint64(1) << p.N) - bits) & p.mask()
	}

	// Parse regime starting at bit N-2.
	r0 := (bits >> (p.N - 2)) & 1
	c := 0
	for i := p.N - 2; i >= 0; i-- {
		if (bits>>i)&1 == r0 {
			c++
		} else {
			break
		}
	}
	var k int
	if r0 == 1 {
		k = c - 1
	} else {
		k = -c
	}

	// Bits remaining after sign + regime run + terminator.
	remaining := p.N - 1 - c - 1
	if remaining < 0 {
		remaining = 0
	}
	rest := bits & ((uint64(1) << remaining) - 1)

	// Exponent: up to ES bits, zero-padded on the right if cut off.
	gotExp := p.ES
	if remaining < p.ES {
		gotExp = remaining
	}
	eexp := 0
	if gotExp > 0 {
		eexp = int(rest >> (remaining - gotExp))
	}
	eexp <<= p.ES - gotExp

	fb := remaining - gotExp
	frac := rest & ((uint64(1) << fb) - 1)
	mant := 1 + float64(frac)/math.Ldexp(1, fb)

	val := mant * math.Ldexp(1, k*(1<<p.ES)+eexp)
	if negative {
		return -val
	}
	return val
}

// MaxPos returns the largest representable posit value.
func (p PositFormat) MaxPos() float64 {
	return p.Decode((uint64(1) << (p.N - 1)) - 1)
}

// MinPos returns the smallest positive representable value.
func (p PositFormat) MinPos() float64 { return p.Decode(1) }

// Add returns the posit sum of two bit patterns (round through float64,
// which is exact for N <= 32 operands and the double-rounding-free cases our
// datapaths use).
func (p PositFormat) Add(a, b uint64) uint64 { return p.Encode(p.Decode(a) + p.Decode(b)) }

// Mul returns the posit product of two bit patterns.
func (p PositFormat) Mul(a, b uint64) uint64 { return p.Encode(p.Decode(a) * p.Decode(b)) }

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
