package base2

import (
	"fmt"
	"math"
)

// FixedFormat is a signed two's-complement fixed-point format with IntBits
// integer bits (including the sign bit) and FracBits fractional bits. The
// representable range is [-2^(IntBits-1), 2^(IntBits-1) - 2^-FracBits] with
// resolution 2^-FracBits. Out-of-range values saturate, which is the usual
// HLS ap_fixed behaviour.
type FixedFormat struct {
	IntBits  int
	FracBits int
}

// NewFixedFormat validates and returns a fixed-point format.
func NewFixedFormat(intBits, fracBits int) (FixedFormat, error) {
	f := FixedFormat{IntBits: intBits, FracBits: fracBits}
	if intBits < 1 || fracBits < 0 || intBits+fracBits > 63 {
		return f, fmt.Errorf("base2: invalid fixed format <%d,%d>", intBits, fracBits)
	}
	return f, nil
}

// Name implements Format.
func (f FixedFormat) Name() string { return fmt.Sprintf("fixed<%d,%d>", f.IntBits, f.FracBits) }

// Bits implements Format.
func (f FixedFormat) Bits() int { return f.IntBits + f.FracBits }

// scale returns 2^FracBits.
func (f FixedFormat) scale() float64 { return math.Ldexp(1, f.FracBits) }

// maxRaw returns the largest raw value.
func (f FixedFormat) maxRaw() int64 { return (int64(1) << (f.Bits() - 1)) - 1 }

// minRaw returns the smallest raw value.
func (f FixedFormat) minRaw() int64 { return -(int64(1) << (f.Bits() - 1)) }

// Quantize implements Format: round-to-nearest-even with saturation.
func (f FixedFormat) Quantize(x float64) float64 {
	return f.FromRaw(f.ToRaw(x))
}

// ToRaw converts a float to the raw integer representation.
func (f FixedFormat) ToRaw(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	scaled := x * f.scale()
	r := math.RoundToEven(scaled)
	if r > float64(f.maxRaw()) {
		return f.maxRaw()
	}
	if r < float64(f.minRaw()) {
		return f.minRaw()
	}
	return int64(r)
}

// FromRaw converts a raw integer back to float64.
func (f FixedFormat) FromRaw(raw int64) float64 { return float64(raw) / f.scale() }

// Fixed is a fixed-point value carrying its format.
type Fixed struct {
	Raw int64
	Fmt FixedFormat
}

// NewFixed quantizes x into format f.
func NewFixed(f FixedFormat, x float64) Fixed { return Fixed{Raw: f.ToRaw(x), Fmt: f} }

// Float returns the value as float64.
func (a Fixed) Float() float64 { return a.Fmt.FromRaw(a.Raw) }

func (a Fixed) String() string { return fmt.Sprintf("%g:%s", a.Float(), a.Fmt.Name()) }

func (a Fixed) sameFmt(b Fixed) error {
	if a.Fmt != b.Fmt {
		return fmt.Errorf("base2: format mismatch %s vs %s", a.Fmt.Name(), b.Fmt.Name())
	}
	return nil
}

func (f FixedFormat) saturate(raw int64) int64 {
	if raw > f.maxRaw() {
		return f.maxRaw()
	}
	if raw < f.minRaw() {
		return f.minRaw()
	}
	return raw
}

// Add returns a+b with saturation. Formats must match.
func (a Fixed) Add(b Fixed) (Fixed, error) {
	if err := a.sameFmt(b); err != nil {
		return Fixed{}, err
	}
	return Fixed{Raw: a.Fmt.saturate(a.Raw + b.Raw), Fmt: a.Fmt}, nil
}

// Sub returns a-b with saturation. Formats must match.
func (a Fixed) Sub(b Fixed) (Fixed, error) {
	if err := a.sameFmt(b); err != nil {
		return Fixed{}, err
	}
	return Fixed{Raw: a.Fmt.saturate(a.Raw - b.Raw), Fmt: a.Fmt}, nil
}

// Mul returns a*b, rounding the product back into the shared format with
// round-to-nearest-even on the shifted-out fraction bits.
func (a Fixed) Mul(b Fixed) (Fixed, error) {
	if err := a.sameFmt(b); err != nil {
		return Fixed{}, err
	}
	// Full product has 2*FracBits fraction bits; shift back by FracBits.
	prod := a.Raw * b.Raw
	fb := a.Fmt.FracBits
	if fb == 0 {
		return Fixed{Raw: a.Fmt.saturate(prod), Fmt: a.Fmt}, nil
	}
	half := int64(1) << (fb - 1)
	shifted := prod >> fb
	rem := prod - (shifted << fb)
	if rem < 0 {
		rem += int64(1) << fb
		shifted--
	}
	switch {
	case rem > half, rem == half && shifted&1 == 1:
		shifted++
	}
	return Fixed{Raw: a.Fmt.saturate(shifted), Fmt: a.Fmt}, nil
}

// Div returns a/b rounded to nearest, or an error on division by zero.
func (a Fixed) Div(b Fixed) (Fixed, error) {
	if err := a.sameFmt(b); err != nil {
		return Fixed{}, err
	}
	if b.Raw == 0 {
		return Fixed{}, fmt.Errorf("base2: fixed-point division by zero")
	}
	// Compute in float64 (exact for <= 53 significant bits) and re-quantize;
	// hardware would use a shifted integer divide with the same result.
	q := a.Float() / b.Float()
	return NewFixed(a.Fmt, q), nil
}

// MaxValue returns the largest representable value.
func (f FixedFormat) MaxValue() float64 { return f.FromRaw(f.maxRaw()) }

// MinValue returns the smallest (most negative) representable value.
func (f FixedFormat) MinValue() float64 { return f.FromRaw(f.minRaw()) }

// Resolution returns the spacing between adjacent values (one ULP).
func (f FixedFormat) Resolution() float64 { return 1 / f.scale() }
