package base2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedFormatBasics(t *testing.T) {
	f, err := NewFixedFormat(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "fixed<8,8>" || f.Bits() != 16 {
		t.Error("name/bits wrong")
	}
	if f.Resolution() != 1.0/256 {
		t.Error("resolution wrong")
	}
	if f.MaxValue() != 127.99609375 || f.MinValue() != -128 {
		t.Errorf("range wrong: [%v, %v]", f.MinValue(), f.MaxValue())
	}
}

func TestFixedFormatValidation(t *testing.T) {
	if _, err := NewFixedFormat(0, 8); err == nil {
		t.Error("IntBits 0 must fail")
	}
	if _, err := NewFixedFormat(40, 40); err == nil {
		t.Error("over-wide format must fail")
	}
	if _, err := NewFixedFormat(8, -1); err == nil {
		t.Error("negative FracBits must fail")
	}
}

func TestFixedQuantizeExactAndRounded(t *testing.T) {
	f, _ := NewFixedFormat(8, 4)
	if f.Quantize(1.25) != 1.25 { // representable (4 frac bits)
		t.Error("representable value changed")
	}
	// 1/3 rounds to nearest multiple of 1/16.
	got := f.Quantize(1.0 / 3.0)
	want := math.RoundToEven((1.0/3.0)*16) / 16
	if got != want {
		t.Errorf("quantize(1/3) = %v, want %v", got, want)
	}
}

func TestFixedSaturation(t *testing.T) {
	f, _ := NewFixedFormat(4, 4) // range [-8, 7.9375]
	if f.Quantize(100) != f.MaxValue() {
		t.Error("positive overflow must saturate")
	}
	if f.Quantize(-100) != f.MinValue() {
		t.Error("negative overflow must saturate")
	}
	if f.Quantize(math.NaN()) != 0 {
		t.Error("NaN quantizes to 0")
	}
}

func TestFixedArithmetic(t *testing.T) {
	f, _ := NewFixedFormat(8, 8)
	a := NewFixed(f, 1.5)
	b := NewFixed(f, 2.25)
	sum, err := a.Add(b)
	if err != nil || sum.Float() != 3.75 {
		t.Errorf("Add = %v (%v)", sum.Float(), err)
	}
	dif, _ := a.Sub(b)
	if dif.Float() != -0.75 {
		t.Errorf("Sub = %v", dif.Float())
	}
	prod, _ := a.Mul(b)
	if prod.Float() != 3.375 {
		t.Errorf("Mul = %v", prod.Float())
	}
	quo, err := b.Div(a)
	if err != nil || quo.Float() != 1.5 {
		t.Errorf("Div = %v (%v)", quo.Float(), err)
	}
	if _, err := a.Div(NewFixed(f, 0)); err == nil {
		t.Error("division by zero must error")
	}
	g, _ := NewFixedFormat(4, 4)
	if _, err := a.Add(NewFixed(g, 1)); err == nil {
		t.Error("format mismatch must error")
	}
}

func TestFixedMulMatchesFloatProperty(t *testing.T) {
	f, _ := NewFixedFormat(12, 12)
	prop := func(ai, bi int16) bool {
		a := NewFixed(f, float64(ai)/64)
		b := NewFixed(f, float64(bi)/64)
		prod, err := a.Mul(b)
		if err != nil {
			return false
		}
		exact := a.Float() * b.Float()
		// Product must be within half a ULP of the exact product (or
		// saturated at range edge).
		if exact > f.MaxValue() || exact < f.MinValue() {
			return prod.Float() == f.MaxValue() || prod.Float() == f.MinValue()
		}
		return math.Abs(prod.Float()-exact) <= f.Resolution()/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPositFormatValidation(t *testing.T) {
	if _, err := NewPositFormat(2, 1); err == nil {
		t.Error("n=2 must fail")
	}
	if _, err := NewPositFormat(64, 1); err == nil {
		t.Error("n=64 must fail")
	}
	if _, err := NewPositFormat(16, 5); err == nil {
		t.Error("es=5 must fail")
	}
}

func TestPositSpecialValues(t *testing.T) {
	p, _ := NewPositFormat(16, 1)
	if p.Encode(0) != 0 || p.Decode(0) != 0 {
		t.Error("zero roundtrip failed")
	}
	if p.Encode(math.NaN()) != p.NaR() {
		t.Error("NaN must encode to NaR")
	}
	if p.Encode(math.Inf(1)) != p.NaR() {
		t.Error("Inf must encode to NaR")
	}
	if !math.IsNaN(p.Decode(p.NaR())) {
		t.Error("NaR must decode to NaN")
	}
	if p.Encode(1) != uint64(1)<<(p.N-2) {
		t.Errorf("posit 1.0 must be 0100..0, got %b", p.Encode(1))
	}
	if p.Decode(p.Encode(-1)) != -1 {
		t.Error("-1 roundtrip failed")
	}
}

func TestPositExhaustiveRoundTrip16(t *testing.T) {
	// Every posit16 pattern must decode to a value that re-encodes to the
	// same pattern (bit-exactness of the decoder/encoder pair).
	p, _ := NewPositFormat(16, 1)
	for bits := uint64(0); bits < 1<<16; bits++ {
		v := p.Decode(bits)
		if math.IsNaN(v) {
			continue
		}
		if got := p.Encode(v); got != bits {
			t.Fatalf("posit16 roundtrip failed: bits=%04x decode=%g re-encode=%04x", bits, v, got)
		}
	}
}

func TestPositExhaustiveRoundTrip8es0(t *testing.T) {
	p, _ := NewPositFormat(8, 0)
	for bits := uint64(0); bits < 1<<8; bits++ {
		v := p.Decode(bits)
		if math.IsNaN(v) {
			continue
		}
		if got := p.Encode(v); got != bits {
			t.Fatalf("posit8 roundtrip failed: bits=%02x decode=%g re-encode=%02x", bits, v, got)
		}
	}
}

func TestPositMonotonicity(t *testing.T) {
	// Classic posit property: ordering of (non-NaR) posit values matches
	// the ordering of their bit patterns read as two's-complement ints.
	p, _ := NewPositFormat(12, 2)
	type pv struct {
		signed int64
		val    float64
	}
	var all []pv
	for bits := uint64(0); bits < 1<<12; bits++ {
		if bits == p.NaR() {
			continue
		}
		signed := int64(bits)
		if bits>>(uint(p.N)-1) == 1 {
			signed = int64(bits) - (1 << uint(p.N))
		}
		all = append(all, pv{signed, p.Decode(bits)})
	}
	// Sort by signed pattern ordering is the natural iteration order after
	// shifting; verify values strictly increase.
	last := math.Inf(-1)
	for s := -(int64(1) << 11) + 1; s < int64(1)<<11; s++ {
		for _, e := range all {
			if e.signed == s {
				if e.val <= last {
					t.Fatalf("posit monotonicity violated at pattern %d: %g <= %g", s, e.val, last)
				}
				last = e.val
			}
		}
	}
}

func TestPositRoundingIsNearest(t *testing.T) {
	p, _ := NewPositFormat(16, 1)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		x := math.Ldexp(rng.Float64()*2-1, rng.Intn(20)-10)
		if x == 0 {
			continue
		}
		q := p.Decode(p.Encode(x))
		// q must be at least as close to x as the adjacent posits.
		bits := p.Encode(x)
		for _, nb := range []uint64{bits - 1, bits + 1} {
			nv := p.Decode(nb & p.mask())
			if math.IsNaN(nv) {
				continue
			}
			if math.Abs(nv-x) < math.Abs(q-x)-1e-18 {
				t.Fatalf("x=%g rounded to %g but neighbour %g is closer", x, q, nv)
			}
		}
	}
}

func TestPositSaturation(t *testing.T) {
	p, _ := NewPositFormat(8, 0)
	big := 1e30
	if got := p.Decode(p.Encode(big)); got != p.MaxPos() {
		t.Errorf("overflow must saturate at maxpos, got %g want %g", got, p.MaxPos())
	}
	tiny := 1e-30
	if got := p.Decode(p.Encode(tiny)); got != p.MinPos() {
		t.Errorf("underflow must saturate at minpos, got %g want %g", got, p.MinPos())
	}
	if got := p.Decode(p.Encode(-big)); got != -p.MaxPos() {
		t.Errorf("negative overflow: got %g", got)
	}
}

func TestPositArithmetic(t *testing.T) {
	p, _ := NewPositFormat(16, 1)
	two := p.Encode(2)
	three := p.Encode(3)
	if p.Decode(p.Add(two, three)) != 5 {
		t.Error("2+3 != 5")
	}
	if p.Decode(p.Mul(two, three)) != 6 {
		t.Error("2*3 != 6")
	}
}

func TestMiniFloatFP16Exhaustive(t *testing.T) {
	f := FP16()
	for bits := uint64(0); bits < 1<<16; bits++ {
		v := f.Decode(bits)
		if math.IsNaN(v) {
			continue
		}
		got := f.Encode(v)
		if got != bits {
			// -0 and +0 encode distinctly; Decode keeps the sign.
			if v == 0 && got&0x7fff == 0 && bits&0x7fff == 0 {
				continue
			}
			t.Fatalf("f16 roundtrip failed: %04x -> %g -> %04x", bits, v, got)
		}
	}
}

func TestMiniFloatBF16Exhaustive(t *testing.T) {
	f := BF16()
	for bits := uint64(0); bits < 1<<16; bits++ {
		v := f.Decode(bits)
		if math.IsNaN(v) {
			continue
		}
		got := f.Encode(v)
		if got != bits {
			if v == 0 && got&0x7fff == 0 && bits&0x7fff == 0 {
				continue
			}
			t.Fatalf("bf16 roundtrip failed: %04x -> %g -> %04x", bits, v, got)
		}
	}
}

func TestMiniFloatSpecials(t *testing.T) {
	f := FP16()
	if !math.IsInf(f.Decode(f.Encode(1e30)), 1) {
		t.Error("overflow must produce +Inf")
	}
	if !math.IsInf(f.Decode(f.Encode(math.Inf(-1))), -1) {
		t.Error("-Inf roundtrip failed")
	}
	if !math.IsNaN(f.Decode(f.Encode(math.NaN()))) {
		t.Error("NaN roundtrip failed")
	}
	if f.Decode(f.Encode(1e-30)) != 0 {
		t.Error("deep underflow must flush to zero")
	}
	if f.MaxValue() != 65504 {
		t.Errorf("fp16 max = %g, want 65504", f.MaxValue())
	}
	if f.MinNormal() != math.Ldexp(1, -14) {
		t.Errorf("fp16 min normal = %g", f.MinNormal())
	}
}

func TestMiniFloatSubnormals(t *testing.T) {
	f := FP16()
	// Smallest subnormal is 2^-24.
	sub := math.Ldexp(1, -24)
	if f.Quantize(sub) != sub {
		t.Errorf("smallest subnormal not preserved: %g", f.Quantize(sub))
	}
	// Half of it rounds to zero (ties to even).
	if f.Quantize(sub/2) != 0 {
		t.Errorf("half subnormal must round to 0, got %g", f.Quantize(sub/2))
	}
	// 1.5x rounds to 2x (nearest even between 1 and 2 ulp).
	if got := f.Quantize(sub * 1.5); got != 2*sub {
		t.Errorf("1.5 ulp must round to even (2 ulp): %g", got)
	}
}

func TestBF16MatchesFloat32Truncation(t *testing.T) {
	// bf16 has the same exponent range as f32, so quantizing any f32 value
	// must keep its magnitude within one bf16 ulp.
	f := BF16()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x := float64(float32(math.Ldexp(rng.Float64()*2-1, rng.Intn(60)-30)))
		q := f.Quantize(x)
		if x == 0 {
			continue
		}
		rel := math.Abs(q-x) / math.Abs(x)
		if rel > 1.0/256 { // 7 fraction bits -> half ulp 2^-8
			t.Fatalf("bf16 error too large: x=%g q=%g rel=%g", x, q, rel)
		}
	}
}

func TestMeasureError(t *testing.T) {
	f, _ := NewFixedFormat(4, 2) // resolution 0.25
	xs := []float64{0.1, 0.2, 0.3}
	st := MeasureError(f, xs)
	if st.Samples != 3 {
		t.Error("sample count wrong")
	}
	if st.MaxAbs > 0.125+1e-12 {
		t.Errorf("max abs err %g exceeds half resolution", st.MaxAbs)
	}
	if st.RMSE <= 0 {
		t.Error("rmse must be positive for non-representable inputs")
	}
	empty := MeasureError(f, nil)
	if empty.Samples != 0 || empty.RMSE != 0 {
		t.Error("empty input should give zero stats")
	}
}

func TestFormatInterfaceCompliance(t *testing.T) {
	fixed, _ := NewFixedFormat(8, 8)
	posit, _ := NewPositFormat(16, 1)
	formats := []Format{Float64{}, Float32{}, fixed, posit, FP16(), BF16(), FP8E4M3()}
	for _, f := range formats {
		if f.Name() == "" || f.Bits() <= 0 {
			t.Errorf("bad format metadata: %q %d", f.Name(), f.Bits())
		}
		if got := f.Quantize(0); got != 0 {
			t.Errorf("%s: Quantize(0) = %g", f.Name(), got)
		}
		if got := f.Quantize(1); got != 1 {
			t.Errorf("%s: Quantize(1) = %g (1 must be exactly representable)", f.Name(), got)
		}
	}
}

func TestQuantizeIdempotentProperty(t *testing.T) {
	fixed, _ := NewFixedFormat(8, 8)
	posit, _ := NewPositFormat(16, 1)
	formats := []Format{fixed, posit, FP16(), BF16()}
	prop := func(xi int32) bool {
		x := float64(xi) / (1 << 16)
		for _, f := range formats {
			q := f.Quantize(x)
			if f.Quantize(q) != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
