package dataset

import (
	"fmt"
	"testing"
)

func TestPartitioned(t *testing.T) {
	refs := Partitioned("pts", 10, 3)
	if len(refs) != 3 {
		t.Fatalf("got %d partitions, want 3", len(refs))
	}
	// 10 bytes over 3 partitions: the remainder spreads over the first.
	want := []int64{4, 3, 3}
	for i, r := range refs {
		if r.Name != "pts" || r.Partition != i {
			t.Errorf("partition %d: got %v", i, r)
		}
		if r.Bytes != want[i] {
			t.Errorf("partition %d: %d bytes, want %d", i, r.Bytes, want[i])
		}
	}
	if Sum(refs) != 10 {
		t.Errorf("Sum = %d, want 10", Sum(refs))
	}
	if got := Partitioned("x", 5, 0); len(got) != 1 || got[0].Bytes != 5 {
		t.Errorf("Partitioned with 0 shards = %v, want one whole ref", got)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Name: "pts", Partition: 2}
	if k.String() != "pts#2" {
		t.Errorf("Key.String() = %q", k.String())
	}
	r := Ref{Name: "pts", Partition: 2, Bytes: 8}
	if r.Key() != k {
		t.Errorf("Ref.Key() = %v, want %v", r.Key(), k)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(100)
	if s.Capacity() != 100 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
	a := Ref{Name: "a", Bytes: 40}
	b := Ref{Name: "b", Bytes: 40}
	c := Ref{Name: "c", Bytes: 40}
	for i, r := range []Ref{a, b, c} {
		s.Publish(Version{Ref: r, Time: float64(i)})
	}
	// c's publish must evict a (the oldest) and keep b and c.
	if s.Holds(a) {
		t.Error("a survived eviction")
	}
	if !s.Holds(b) || !s.Holds(c) {
		t.Error("b or c missing after eviction")
	}
	if s.Resident() != 80 || s.Len() != 2 {
		t.Errorf("Resident=%d Len=%d, want 80/2", s.Resident(), s.Len())
	}
	// Touching b (Contains counts as use) protects it from the next evict.
	if !s.Contains(b) {
		t.Fatal("b not contained")
	}
	d := Ref{Name: "d", Bytes: 40}
	evicted := s.Publish(Version{Ref: d, Time: 3})
	if len(evicted) != 1 || evicted[0].Ref.Name != "c" {
		t.Errorf("evicted %v, want c", evicted)
	}
	st := s.Stats()
	if st.Evictions != 2 || st.Published != 4 {
		t.Errorf("stats %+v, want 2 evictions, 4 publishes", st)
	}
}

func TestStoreOversizedRejected(t *testing.T) {
	s := NewStore(10)
	huge := Ref{Name: "huge", Bytes: 11}
	if ev := s.Publish(Version{Ref: huge, Time: 1}); len(ev) != 0 {
		t.Errorf("oversized publish evicted %v", ev)
	}
	if s.Holds(huge) || s.Len() != 0 {
		t.Error("oversized ref was admitted")
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Stats().Rejected)
	}
}

func TestStoreUnbounded(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 64; i++ {
		s.Publish(Version{Ref: Ref{Name: "r", Partition: i, Bytes: 1 << 20}, Time: float64(i)})
	}
	if s.Len() != 64 || s.Stats().Evictions != 0 {
		t.Errorf("unbounded store evicted: len=%d stats=%+v", s.Len(), s.Stats())
	}
}

func TestStoreMissingBytes(t *testing.T) {
	s := NewStore(0)
	a := Ref{Name: "a", Bytes: 30}
	b := Ref{Name: "b", Bytes: 50}
	s.Publish(Version{Ref: a, Time: 1})
	if got := s.MissingBytes([]Ref{a, b}); got != 50 {
		t.Errorf("MissingBytes = %d, want 50", got)
	}
	if got := s.MissingBytes(nil); got != 0 {
		t.Errorf("MissingBytes(nil) = %d", got)
	}
}

func TestStoreLineageTieBreak(t *testing.T) {
	s := NewStore(0)
	r := Ref{Name: "model", Bytes: 8}
	s.Publish(Version{Ref: r, Time: 2, Workflow: "wfB", Task: "t"})
	// An older publish must not supersede the resident version.
	s.Publish(Version{Ref: r, Time: 1, Workflow: "wfZ", Task: "t"})
	if v, ok := s.Version(r); !ok || v.Workflow != "wfB" {
		t.Errorf("older publish superseded: %+v", v)
	}
	// Same time: the higher workflow id wins, deterministically.
	s.Publish(Version{Ref: r, Time: 2, Workflow: "wfC", Task: "t"})
	if v, _ := s.Version(r); v.Workflow != "wfC" {
		t.Errorf("tie-break ignored workflow id: %+v", v)
	}
	s.Publish(Version{Ref: r, Time: 2, Workflow: "wfA", Task: "t"})
	if v, _ := s.Version(r); v.Workflow != "wfC" {
		t.Errorf("lower workflow id superseded: %+v", v)
	}
	if sup := s.Stats().Superseded; sup != 1 {
		t.Errorf("Superseded = %d, want 1", sup)
	}
}

func TestSupersedes(t *testing.T) {
	base := Version{Time: 1, Workflow: "b", Task: "m"}
	cases := []struct {
		a    Version
		want bool
	}{
		{Version{Time: 2, Workflow: "a", Task: "a"}, true},
		{Version{Time: 0.5, Workflow: "z", Task: "z"}, false},
		{Version{Time: 1, Workflow: "c", Task: "a"}, true},
		{Version{Time: 1, Workflow: "a", Task: "z"}, false},
		{Version{Time: 1, Workflow: "b", Task: "n"}, true},
		{Version{Time: 1, Workflow: "b", Task: "a"}, false},
	}
	for i, c := range cases {
		if got := Supersedes(c.a, base); got != c.want {
			t.Errorf("case %d: Supersedes(%+v) = %v, want %v", i, c.a, got, c.want)
		}
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := NewStore(0)
	for _, n := range []string{"c", "a", "b"} {
		for p := 1; p >= 0; p-- {
			s.Publish(Version{Ref: Ref{Name: n, Partition: p, Bytes: 1}, Time: 1})
		}
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %v before %v", keys[i-1], keys[i])
		}
	}
	if len(keys) != 6 {
		t.Fatalf("len(Keys()) = %d, want 6", len(keys))
	}
}

// TestStoreRejectedPublishStillTouches pins the LRU refresh on a
// same-version republish: re-publishing resident data marks it used even
// though the version does not supersede.
func TestStoreRejectedPublishStillTouches(t *testing.T) {
	s := NewStore(100)
	a := Ref{Name: "a", Bytes: 40}
	b := Ref{Name: "b", Bytes: 40}
	s.Publish(Version{Ref: a, Time: 1})
	s.Publish(Version{Ref: b, Time: 2})
	// Republish a with an older version: rejected, but it refreshes a's
	// recency, so the next eviction takes b.
	s.Publish(Version{Ref: a, Time: 0.5})
	ev := s.Publish(Version{Ref: Ref{Name: "c", Bytes: 40}, Time: 3})
	if len(ev) != 1 || ev[0].Ref.Name != "b" {
		t.Errorf("evicted %v, want b (a was refreshed)", ev)
	}
}

func TestHoldsDoesNotPerturbLRU(t *testing.T) {
	s := NewStore(100)
	a := Ref{Name: "a", Bytes: 40}
	b := Ref{Name: "b", Bytes: 40}
	s.Publish(Version{Ref: a, Time: 1})
	s.Publish(Version{Ref: b, Time: 2})
	// Pure reads must not count as use: a stays oldest.
	for i := 0; i < 4; i++ {
		if !s.Holds(a) {
			t.Fatal("a not held")
		}
	}
	ev := s.Publish(Version{Ref: Ref{Name: "c", Bytes: 40}, Time: 3})
	if len(ev) != 1 || ev[0].Ref.Name != "a" {
		t.Errorf("evicted %v, want a (Holds must not refresh)", ev)
	}
	// And Holds must not touch the hit/miss counters either.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Holds moved counters: %+v", st)
	}
}

// TestHoldsByKey pins the identity model: partitions are identified by
// (name, partition) alone; Bytes is the declared size, not part of the
// key, so a reader quoting a different size still hits the resident copy.
func TestHoldsByKey(t *testing.T) {
	s := NewStore(0)
	s.Publish(Version{Ref: Ref{Name: "a", Bytes: 40}, Time: 1})
	if !s.Holds(Ref{Name: "a", Bytes: 39}) {
		t.Error("Holds keyed on bytes; identity is (name, partition)")
	}
	if s.Holds(Ref{Name: "a", Partition: 1, Bytes: 40}) {
		t.Error("Holds ignored the partition index")
	}
}

func ExampleStore() {
	s := NewStore(128)
	for p, r := range Partitioned("points", 96, 3) {
		s.Publish(Version{Ref: r, Time: float64(p), Workflow: "ingest"})
	}
	fmt.Println(s.Len(), s.Resident(), s.MissingBytes([]Ref{{Name: "points", Partition: 1, Bytes: 32}}))
	// Output: 3 96 0
}
