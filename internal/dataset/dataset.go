// Package dataset names the data that workflow stages exchange. The rest
// of the stack models *how much* data moves (anonymous InputBytes /
// OutputBytes on a TaskSpec); this package models *which* data it is —
// a named dataset split into partitions with modelled sizes — so routing
// tiers can price placement (a site already holding a partition charges
// nothing to read it) and cache published intermediates across workflows
// (ensemble members sharing assimilation output, traffic windows sharing
// map-match state).
//
// Lineage follows the engine's deterministic total order: when two
// workflows publish the same partition, the winner resolves by the
// standard (time, workflow id, name) tie-break, so concurrent runs
// converge on one byte-identical store state regardless of goroutine
// interleaving.
package dataset

import (
	"fmt"
	"sort"
)

// Ref names one partition of a dataset together with its modelled size.
// A Ref is a value: two refs with the same Name and Partition denote the
// same data wherever they appear (across tasks, workflows, and sites).
type Ref struct {
	Name      string // dataset name, e.g. "weather/analysis"
	Partition int    // partition index within the dataset
	Bytes     int64  // modelled partition size
}

// Key identifies a partition independent of its size. It is a comparable
// struct rather than a formatted string so hot-path lookups (the fleet
// router prices every candidate site per submission, allocation-free)
// need no formatting.
type Key struct {
	Name      string
	Partition int
}

func (k Key) String() string { return fmt.Sprintf("%s#%d", k.Name, k.Partition) }

// Key returns the store key identifying this partition.
func (r Ref) Key() Key { return Key{Name: r.Name, Partition: r.Partition} }

func (r Ref) String() string {
	return fmt.Sprintf("%s#%d(%dB)", r.Name, r.Partition, r.Bytes)
}

// Single returns the whole dataset as its only partition.
func Single(name string, bytes int64) Ref {
	return Ref{Name: name, Partition: 0, Bytes: bytes}
}

// Partitioned splits a dataset of total bytes into n equal partitions,
// spreading any remainder one byte each over the first partitions so the
// sum is exact and the split deterministic.
func Partitioned(name string, total int64, n int) []Ref {
	if n < 1 {
		n = 1
	}
	each := total / int64(n)
	rem := total % int64(n)
	refs := make([]Ref, n)
	for i := range refs {
		b := each
		if int64(i) < rem {
			b++
		}
		refs[i] = Ref{Name: name, Partition: i, Bytes: b}
	}
	return refs
}

// Sum returns the total modelled bytes across refs.
func Sum(refs []Ref) int64 {
	var total int64
	for _, r := range refs {
		total += r.Bytes
	}
	return total
}

// Version is one published instance of a partition: the lineage record a
// store keeps alongside the bytes. Publishing the same partition again
// replaces the version only if the newcomer supersedes the resident one
// (see Supersedes).
type Version struct {
	Ref      Ref
	Time     float64 // modelled publish time
	Workflow string  // publishing workflow id
	Task     string  // producing task (informational)
}

// Supersedes reports whether version a replaces version b for the same
// partition, by the standard (time, workflow id, name) tie-break: the
// later publish wins; equal times resolve to the lexicographically
// greater workflow id, then the greater producing task name. The order is
// total, so concurrent publishers converge on the same winner no matter
// the arrival interleaving.
func Supersedes(a, b Version) bool {
	if a.Time != b.Time {
		return a.Time > b.Time
	}
	if a.Workflow != b.Workflow {
		return a.Workflow > b.Workflow
	}
	return a.Task > b.Task
}

// StoreStats counts store activity (modelled run totals).
type StoreStats struct {
	Hits           int   // Contains/MissingBytes probes that found a partition
	Misses         int   // probes that did not
	Published      int   // publishes accepted (new or superseding)
	Superseded     int   // publishes that replaced a resident version
	Rejected       int   // publishes dropped by the lineage tie-break
	Evictions      int   // partitions evicted by the byte bound
	PublishedBytes int64 // bytes accepted into the store
	EvictedBytes   int64 // bytes evicted by the byte bound
}

type entry struct {
	ver Version
	use int64 // LRU clock at last touch
}

// Store is a bytes-bounded LRU of dataset partitions — the site-local
// dataset cache (fleet tier) and the regional artifact-store extension
// (region tier) both embed one. The zero capacity means unbounded. A
// Store is not safe for concurrent use; callers hold their own site or
// region lock, matching the bitstream cache it sits beside.
type Store struct {
	capacity int64 // max resident bytes; 0 = unbounded
	resident map[Key]*entry
	bytes    int64
	seq      int64
	stats    StoreStats
}

// NewStore returns an empty store bounded to capacity bytes (0 = unbounded).
func NewStore(capacity int64) *Store {
	return &Store{capacity: capacity, resident: make(map[Key]*entry)}
}

// Capacity returns the byte bound (0 = unbounded).
func (s *Store) Capacity() int64 { return s.capacity }

// Resident returns the bytes currently held.
func (s *Store) Resident() int64 { return s.bytes }

// Len returns the number of resident partitions.
func (s *Store) Len() int { return len(s.resident) }

// Stats returns a copy of the activity counters.
func (s *Store) Stats() StoreStats { return s.stats }

// Contains reports whether the partition is resident, counting the probe
// and refreshing its LRU position on a hit.
func (s *Store) Contains(r Ref) bool {
	e, ok := s.resident[r.Key()]
	if ok {
		s.seq++
		e.use = s.seq
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return ok
}

// Holds reports residency without touching LRU order or counters — the
// pure read routing estimates use, so pricing candidate sites does not
// perturb the store state the chosen site will see.
func (s *Store) Holds(r Ref) bool {
	_, ok := s.resident[r.Key()]
	return ok
}

// MissingBytes sums the bytes of refs not resident, without touching LRU
// order or counters (an estimate over candidate sites must not perturb
// the store). Resident partitions contribute zero: the site already
// holds them.
func (s *Store) MissingBytes(refs []Ref) int64 {
	var missing int64
	for _, r := range refs {
		if _, ok := s.resident[r.Key()]; !ok {
			missing += r.Bytes
		}
	}
	return missing
}

// Version returns the lineage record of a resident partition.
func (s *Store) Version(r Ref) (Version, bool) {
	e, ok := s.resident[r.Key()]
	if !ok {
		return Version{}, false
	}
	return e.ver, true
}

// Publish admits a version, evicting least-recently-used partitions if
// the byte bound requires it, and returns the evicted versions (oldest
// first). A version already resident is replaced only when the newcomer
// supersedes it per the (time, workflow id, name) tie-break; a rejected
// publish still refreshes the winner's LRU position (the data was just
// produced again, so it is hot either way).
func (s *Store) Publish(v Version) []Version {
	key := v.Ref.Key()
	s.seq++
	if e, ok := s.resident[key]; ok {
		e.use = s.seq
		if !Supersedes(v, e.ver) {
			s.stats.Rejected++
			return nil
		}
		s.bytes += v.Ref.Bytes - e.ver.Ref.Bytes
		e.ver = v
		s.stats.Published++
		s.stats.Superseded++
		s.stats.PublishedBytes += v.Ref.Bytes
		return s.enforce(key)
	}
	if s.capacity > 0 && v.Ref.Bytes > s.capacity {
		// Larger than the whole store: never resident, count as rejected
		// so the caller sees the publish went nowhere.
		s.stats.Rejected++
		return nil
	}
	s.resident[key] = &entry{ver: v, use: s.seq}
	s.bytes += v.Ref.Bytes
	s.stats.Published++
	s.stats.PublishedBytes += v.Ref.Bytes
	return s.enforce(key)
}

// enforce evicts least-recently-used partitions until the byte bound
// holds, never evicting the just-published key. Ties on the LRU clock are
// impossible (the clock is strictly monotonic), so eviction order is
// deterministic.
func (s *Store) enforce(keep Key) []Version {
	if s.capacity <= 0 || s.bytes <= s.capacity {
		return nil
	}
	var evicted []Version
	for s.bytes > s.capacity {
		var oldestKey Key
		var oldest *entry
		for k, e := range s.resident {
			if k == keep {
				continue
			}
			if oldest == nil || e.use < oldest.use {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			break // only the protected key remains
		}
		delete(s.resident, oldestKey)
		s.bytes -= oldest.ver.Ref.Bytes
		s.stats.Evictions++
		s.stats.EvictedBytes += oldest.ver.Ref.Bytes
		evicted = append(evicted, oldest.ver)
	}
	return evicted
}

// Keys returns the resident partition keys rendered in sorted order
// (tests and state digests).
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.resident))
	for k := range s.resident {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	return keys
}
