package variants

import (
	"fmt"

	"everest/internal/ekl"
	"everest/internal/tensor"
)

// Example kernel sources: the compute cores of two paper use cases written
// in EKL, small enough to compile in tests yet shaped like the real thing.
// They are what `basecamp compile -kernel windpower|airquality` runs
// source-to-schedule and what the E-compile scenario serves.

// WindpowerEKL is the renewable-energy prediction kernel (paper §II-B): an
// RBF kernel-ridge-regression inference — squared distances between test
// and training feature rows, a Gaussian kernel evaluation, and the dual-
// weight contraction. The exp/pow per (i, j) pair is what the FPGA
// datapath absorbs in its pipelined special-function units while a CPU
// core pays a polynomial sequence for each: the offload win E-compile
// schedules around.
func WindpowerEKL() string {
	return `# Wind power KRR inference: pred[i] = sum_j exp(-gamma*||X_i - Z_j||^2) alpha_j
kernel windpower_krr {
  input X : [N, D]
  input Z : [M, D]
  input alpha : [M]
  param gamma = 0.5
  d2 = sum(d) pow(X[i, d] - Z[j, d], 2)
  kv = exp(-gamma * d2[i, j])
  pred = sum(j) kv[i, j] * alpha[j]
  output pred[i]
}
`
}

// AirqualityEKL is the air-quality calibration kernel (paper §II-C): a
// low-cost-sensor correction that applies a per-sensor linear gain/offset
// followed by a humidity-dependent exponential drift term.
func AirqualityEKL() string {
	return `# Air quality sensor calibration with humidity-dependent drift correction
kernel airquality_calib {
  input raw : [S, T]
  input hum : [S, T]
  input gain : [S]
  input offset : [S]
  param beta = 0.02
  corrected = (raw[s, t] - offset[s]) * gain[s] * exp(-beta * hum[s, t])
  output corrected[s, t]
}
`
}

// MatmulCFD is the CFDlang demo program (paper §V-B): the contracted tensor
// product that the legacy frontend's documentation opens with.
func MatmulCFD() string {
	return `# CFDlang matrix multiply: C = (A x B) contracted over dims 2 and 3
var input A : [64 96]
var input B : [96 48]
var output C : [64 48]
C = (A * B) . [[2 3]]
`
}

// exampleExtents pins the shape specialization of each example kernel.
var exampleExtents = map[string]map[string]int{
	"windpower":  {"N": 96, "M": 192, "D": 12},
	"airquality": {"S": 64, "T": 336},
}

// ExampleNames lists the built-in example kernels in stable order.
func ExampleNames() []string { return []string{"airquality", "windpower"} }

// ExampleKernel resolves a named example to its source and the
// deterministic binding it is specialized against.
func ExampleKernel(name string) (src string, binding ekl.Binding, err error) {
	switch name {
	case "windpower":
		src = WindpowerEKL()
	case "airquality":
		src = AirqualityEKL()
	default:
		return "", ekl.Binding{}, fmt.Errorf("variants: unknown example kernel %q (want windpower or airquality)", name)
	}
	k, err := ekl.ParseKernel(src)
	if err != nil {
		return "", ekl.Binding{}, err
	}
	return src, SynthesizeBinding(k, exampleExtents[name]), nil
}

// CompileExample compiles a built-in example kernel source-to-schedule.
func CompileExample(name string, opt Options) (*Compiled, error) {
	src, binding, err := ExampleKernel(name)
	if err != nil {
		return nil, err
	}
	return CompileEKL(src, binding, opt)
}

// SynthesizeBinding materializes a deterministic binding for a kernel:
// symbolic dimensions take their extent from extents (default 16), value
// tensors are filled with deterministic pseudo-random data, index tensors
// with zeros (always in range), and parameters take their declared
// defaults (1 for defaultless iparams, 0.5 otherwise). Shapes, not values,
// drive hardware generation — the values only feed the reference
// interpretation that specializes them.
func SynthesizeBinding(k *ekl.Kernel, extents map[string]int) ekl.Binding {
	b := ekl.Binding{
		Tensors: make(map[string]*tensor.Tensor),
		Scalars: make(map[string]float64),
	}
	seed := uint64(0x2545f4914f6cdd1d)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000)/1000 + 0.001
	}
	for _, in := range k.Inputs {
		shape := make([]int, len(in.Dims))
		for i, d := range in.Dims {
			if d.Sym != "" {
				ext := extents[d.Sym]
				if ext < 2 {
					ext = 16
				}
				shape[i] = ext
			} else {
				shape[i] = d.Size
			}
		}
		t := tensor.New(shape...)
		if !in.IsIndex {
			for i := range t.Data() {
				t.Data()[i] = next()
			}
		}
		b.Tensors[in.Name] = t
	}
	for _, p := range k.Params {
		switch {
		case p.HasDef:
			b.Scalars[p.Name] = p.Default
		case p.IsInt:
			b.Scalars[p.Name] = 1
		default:
			b.Scalars[p.Name] = 0.5
		}
	}
	return b
}
