package variants

import (
	"math"
	"strings"
	"testing"

	"everest/internal/ekl"
	"everest/internal/onnxlite"
	"everest/internal/runtime"
	"everest/internal/tensor"
)

// denseWeights returns small deterministic weights for a D->H->O network.
func denseWeights(d, h, o int) map[string][]float64 {
	fill := func(n int, scale float64) []float64 {
		out := make([]float64, n)
		seed := uint64(0x51ed2701fe3a29b7)
		for i := range out {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			out[i] = (float64(seed%2000)/1000 - 1) * scale
		}
		return out
	}
	return map[string][]float64{
		"w1": fill(d*h, 0.5), "b1": fill(h, 0.1),
		"w2": fill(h*o, 0.5), "b2": fill(o, 0.1),
	}
}

// TestONNXToEKLMatchesModelRun is the translation's acceptance test: the
// generated kernel's reference interpretation must compute exactly what
// onnxlite.Run computes on the same weights and input batch.
func TestONNXToEKLMatchesModelRun(t *testing.T) {
	const batch, d, h, o = 8, 6, 10, 2
	m := onnxlite.DenseMLP("energy-mlp", batch, d, h, o, denseWeights(d, h, o))
	src, binding, err := onnxToEKL(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ekl.ParseKernel(src)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\nsource:\n%s", err, src)
	}
	res, err := k.Run(binding)
	if err != nil {
		t.Fatalf("generated kernel does not run: %v\nsource:\n%s", err, src)
	}
	var eklOut *tensor.Tensor
	for _, out := range res.Outputs {
		eklOut = out
	}
	ref, err := m.Run(map[string]*tensor.Tensor{"x": binding.Tensors["x"]})
	if err != nil {
		t.Fatal(err)
	}
	want := ref["y"]
	if eklOut == nil || len(eklOut.Data()) != len(want.Data()) {
		t.Fatalf("output shape mismatch: ekl %v vs onnx %v", eklOut, want)
	}
	if diff := tensor.MaxAbsDiff(eklOut, want); diff > 1e-12 {
		t.Fatalf("EKL interpretation diverges from onnxlite.Run: max|diff| = %g", diff)
	}
}

// TestCompileONNXDerivesOperatingPoints runs the full source-to-schedule
// flow on the dense model: the compiled result must carry derived
// software and fpga operating points and a deployable bitstream.
func TestCompileONNXDerivesOperatingPoints(t *testing.T) {
	const batch, d, h = 16, 8, 12
	m := onnxlite.DenseMLP("energy-mlp", batch, d, h, 1, denseWeights(d, h, 1))
	c, err := CompileONNX(m, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Frontend != "ekl" {
		t.Fatalf("frontend = %q", c.Frontend)
	}
	if c.Design == nil || c.Design.Bitstream.ID == "" {
		t.Fatal("no generated bitstream")
	}
	if c.Flops <= 0 || c.InputBytes <= 0 || c.OutputBytes <= 0 {
		t.Fatalf("workload model not derived: flops=%g in=%d out=%d", c.Flops, c.InputBytes, c.OutputBytes)
	}
	for _, v := range []string{runtime.VariantCPU1, runtime.VariantCPU16, runtime.VariantFPGA} {
		p, ok := c.Point(v)
		if !ok {
			t.Fatalf("missing operating point %s (have %+v)", v, c.Points)
		}
		if p.LatencySeconds <= 0 {
			t.Fatalf("%s latency not derived: %+v", v, p)
		}
	}
	// Softmax-headed models (MLP2) must also translate.
	m2 := onnxlite.MLP2("mlp2", d, h, 3, map[string][]float64{
		"w1": denseWeights(d, h, 3)["w1"], "b1": denseWeights(d, h, 3)["b1"],
		"w2": denseWeights(d, h, 3)["w2"],
	})
	src, binding, err := onnxToEKL(m2, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ekl.ParseKernel(src)
	if err != nil {
		t.Fatalf("MLP2 source does not parse: %v\n%s", err, src)
	}
	res, err := k.Run(binding)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m2.Run(map[string]*tensor.Tensor{"x": binding.Tensors["x"]})
	if err != nil {
		t.Fatal(err)
	}
	var got *tensor.Tensor
	for _, out := range res.Outputs {
		got = out
	}
	if diff := tensor.MaxAbsDiff(got, ref["probs"]); diff > 1e-9 {
		t.Fatalf("softmax head diverges: max|diff| = %g", diff)
	}
}

// TestONNXSharedInitializerDeclaredOnce: a tied weight or shared bias
// feeding several nodes must yield one EKL declaration, not a duplicate
// that fails the parse.
func TestONNXSharedInitializerDeclaredOnce(t *testing.T) {
	shared := &onnxlite.Model{
		Name:    "shared_bias",
		Inputs:  map[string][]int{"x": {4, 3}},
		Init:    map[string][]float64{"b": {0.1, 0.2, 0.3}},
		InitDim: map[string][]int{"b": {3}},
		Nodes: []onnxlite.Node{
			{Op: onnxlite.OpAdd, Name: "a1", Inputs: []string{"x", "b"}, Output: "h"},
			{Op: onnxlite.OpAdd, Name: "a2", Inputs: []string{"h", "b"}, Output: "y"},
		},
		Outputs: []string{"y"},
	}
	src, binding, err := onnxToEKL(shared, 4)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ekl.ParseKernel(src)
	if err != nil {
		t.Fatalf("shared-initializer source does not parse: %v\n%s", err, src)
	}
	res, err := k.Run(binding)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shared.Run(map[string]*tensor.Tensor{"x": binding.Tensors["x"]})
	if err != nil {
		t.Fatal(err)
	}
	var got *tensor.Tensor
	for _, out := range res.Outputs {
		got = out
	}
	if diff := tensor.MaxAbsDiff(got, ref["y"]); diff > 1e-12 {
		t.Fatalf("shared-initializer chain diverges: max|diff| = %g", diff)
	}
}

// TestCompileONNXRejectsNonChainModels pins the gate on unsupported
// graphs: conv nets and multi-input models have no EKL lowering.
func TestCompileONNXRejectsNonChainModels(t *testing.T) {
	conv := &onnxlite.Model{
		Name:   "conv",
		Inputs: map[string][]int{"img": {8, 8}},
		Init:   map[string][]float64{"k": {1, 0, 0, 1}},
		InitDim: map[string][]int{
			"k": {2, 2},
		},
		Nodes:   []onnxlite.Node{{Op: onnxlite.OpConv2D, Name: "c", Inputs: []string{"img", "k"}, Output: "y"}},
		Outputs: []string{"y"},
	}
	if _, err := CompileONNX(conv, 1, Options{}); err == nil ||
		!strings.Contains(err.Error(), "EKL lowering") {
		t.Fatalf("conv model accepted (err=%v)", err)
	}
	if _, err := CompileONNX(nil, 1, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// TestMergeVariants pins the DAG-level seed merge: means per variant, and
// fpga present when any kernel offers it.
func TestMergeVariants(t *testing.T) {
	a := &Compiled{Points: []OperatingPoint{
		{Variant: runtime.VariantCPU1, LatencySeconds: 0.010},
		{Variant: runtime.VariantCPU16, LatencySeconds: 0.002},
		{Variant: runtime.VariantFPGA, LatencySeconds: 0.001},
	}}
	b := &Compiled{Points: []OperatingPoint{
		{Variant: runtime.VariantCPU1, LatencySeconds: 0.030},
		{Variant: runtime.VariantCPU16, LatencySeconds: 0.006},
	}}
	merged := MergeVariants(a, b, nil)
	byName := make(map[string]float64)
	for _, v := range merged {
		byName[v.Name] = v.ExpectedMs
	}
	if math.Abs(byName[runtime.VariantCPU1]-20) > 1e-9 {
		t.Fatalf("cpu1 mean = %g ms, want 20", byName[runtime.VariantCPU1])
	}
	if math.Abs(byName[runtime.VariantCPU16]-4) > 1e-9 {
		t.Fatalf("cpu16 mean = %g ms, want 4", byName[runtime.VariantCPU16])
	}
	if math.Abs(byName[runtime.VariantFPGA]-1) > 1e-9 {
		t.Fatalf("fpga mean = %g ms, want 1 (only kernel a offers it)", byName[runtime.VariantFPGA])
	}
}
