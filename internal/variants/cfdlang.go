package variants

import (
	"everest/internal/base2"
	"everest/internal/cfdlang"
	"everest/internal/hls"
	"everest/internal/olympus"
	"everest/internal/tensor"
)

// CompileCFDlang runs a legacy-frontend CFDlang program through the same
// variant pipeline: parse, evaluate against synthesized inputs (shape
// specialization), emit the cfdlang MLIR dialect, derive the HLS loop nest
// from the program structure, schedule, generate the system, and derive
// operating points. inputs may be nil — declarations carry concrete
// extents, so a deterministic binding is synthesized from them.
func CompileCFDlang(src, name string, inputs map[string]*tensor.Tensor, opt Options) (*Compiled, error) {
	backend, format, dev, cpu, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	p, err := cfdlang.Parse(src)
	if err != nil {
		return nil, err
	}
	if inputs == nil {
		inputs = SynthesizeInputs(p)
	}
	res, err := p.Run(inputs)
	if err != nil {
		return nil, err
	}
	module, err := p.EmitModule(name)
	if err != nil {
		return nil, err
	}

	hk, inBytes, outBytes := kernelFromProgram(p, name, format)

	var buffers []olympus.Buffer
	elemBytes := int64((format.Bits() + 7) / 8)
	for _, d := range p.Decls {
		phase := 0
		if d.Output {
			phase = 1
		}
		buffers = append(buffers, olympus.Buffer{
			Name: d.Name, Bytes: sizeOf(d.Dims) * elemBytes, Phase: phase,
		})
	}
	design, err := olympus.Generate(hk, backend, dev, buffers, opt.Olympus)
	if err != nil {
		return nil, err
	}
	_ = res // evaluation is the semantic check; shapes come from the decls

	c := &Compiled{
		KernelName: name, Frontend: "cfdlang", Program: p,
		Module: module, HLSKernel: hk, Report: design.Bitstream.Report, Design: design,
		Flops: CPUFlops(hk.Nest), InputBytes: inBytes, OutputBytes: outBytes,
	}
	c.Points, err = DerivePoints(design, dev, cpu, c.Flops, inBytes, outBytes)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SynthesizeInputs builds a deterministic binding for every input tensor of
// a CFDlang program from its declared (always concrete) extents.
func SynthesizeInputs(p *cfdlang.Program) map[string]*tensor.Tensor {
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000)/1000 + 0.001
	}
	out := make(map[string]*tensor.Tensor)
	for _, d := range p.Decls {
		if d.Output {
			continue
		}
		t := tensor.New(d.Dims...)
		for i := range t.Data() {
			t.Data()[i] = next()
		}
		out[d.Name] = t
	}
	return out
}

// kernelFromProgram derives the HLS kernel of a CFDlang program: the loop
// nest of the dominant statement (its full pre-contraction iteration
// space), with the op mix aggregated over every statement — the same
// single-accelerator fusion FromEKLKernel applies to EKL kernels.
func kernelFromProgram(p *cfdlang.Program, name string, format base2.Format) (hls.Kernel, int64, int64) {
	var nest hls.LoopNest
	var domTrips int64 = -1
	var mix hls.OpMix
	for _, s := range p.Stmts {
		shape, reduces := iterSpace(p, s.RHS)
		trips := int64(1)
		for _, d := range shape {
			trips *= int64(d)
		}
		if trips > domTrips {
			domTrips = trips
			nest.TripCounts = append([]int(nil), shape...)
			nest.Reduction = reduces
		}
		countProgramOps(s.RHS, &mix)
		mix.Stores++
	}
	if len(nest.TripCounts) == 0 {
		nest.TripCounts = []int{1}
	}
	nest.Body = mix

	elemBytes := int64((format.Bits() + 7) / 8)
	var inBytes, outBytes int64
	var bufBytes int64
	for _, d := range p.Decls {
		n := sizeOf(d.Dims) * elemBytes
		bufBytes += n
		if d.Output {
			outBytes += n
		} else {
			inBytes += n
		}
	}
	return hls.Kernel{Name: name, Nest: nest, Format: format, BufferBytes: bufBytes}, inBytes, outBytes
}

// iterSpace returns the full iteration space of an expression — contracted
// dimensions included, since the hardware loops over them — and whether any
// contraction (a reduction) occurs.
func iterSpace(p *cfdlang.Program, e cfdlang.Expr) ([]int, bool) {
	switch t := e.(type) {
	case cfdlang.Ref:
		if d := p.Decl(t.Name); d != nil {
			return append([]int(nil), d.Dims...), false
		}
		return nil, false
	case cfdlang.Binary:
		l, lr := iterSpace(p, t.L)
		r, rr := iterSpace(p, t.R)
		if t.Op == "*" { // tensor product: dims concatenate
			return append(l, r...), lr || rr
		}
		return l, lr || rr // elementwise: shapes coincide
	case cfdlang.Contract:
		// The paired dimensions iterate in lockstep (i == j), so each pair
		// contributes one loop: drop the second member of every pair.
		inner, _ := iterSpace(p, t.X)
		drop := make(map[int]bool, len(t.Pairs))
		for _, pr := range t.Pairs {
			drop[pr[1]-1] = true
		}
		var out []int
		for i, d := range inner {
			if !drop[i] {
				out = append(out, d)
			}
		}
		return out, true
	}
	return nil, false
}

// countProgramOps accumulates the per-output-element op mix of one
// expression tree.
func countProgramOps(e cfdlang.Expr, mix *hls.OpMix) {
	switch t := e.(type) {
	case cfdlang.Ref:
		mix.Loads++
	case cfdlang.Binary:
		if t.Op == "*" {
			mix.Muls++
		} else {
			mix.Adds++
		}
		countProgramOps(t.L, mix)
		countProgramOps(t.R, mix)
	case cfdlang.Contract:
		mix.Adds++ // the accumulator of the contraction
		countProgramOps(t.X, mix)
	}
}

func sizeOf(dims []int) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= int64(d)
	}
	return n
}
