package variants

import (
	"math"
	"testing"

	"everest/internal/base2"
	"everest/internal/ekl"
	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/runtime"
)

func fixedOpt(t *testing.T) Options {
	t.Helper()
	f, err := base2.NewFixedFormat(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Format: f}
	o.Olympus.MemPorts = 8
	o.Olympus.SharePLM = true
	o.Olympus.DoubleBuffer = true
	o.Olympus.Replicate = true
	o.Olympus.MaxReplicas = 8
	o.Olympus.PackData = true
	return o
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12+1e-9*math.Abs(b)
}

// TestOperatingPointsDerivedFromSchedule is the acceptance assertion of the
// compiled path: every latency the tuner is seeded with is recomputed here
// from the compilation artifacts — the HLS schedule for the fpga variant,
// the CPU cost model over the scheduled loop nest for the software
// variants — with no hand-declared number anywhere.
func TestOperatingPointsDerivedFromSchedule(t *testing.T) {
	c, err := CompileExample("windpower", fixedOpt(t))
	if err != nil {
		t.Fatal(err)
	}

	// The bitstream the runtime executes embeds the exact schedule the
	// compiler produced: the runtime's fpga cost IS the HLS report.
	if c.Design.Bitstream.Report != c.Report {
		t.Fatalf("bitstream embeds report %+v, compiler produced %+v", c.Design.Bitstream.Report, c.Report)
	}

	// The schedule itself follows from the kernel's loop nest: with II=1
	// (banked ports + single-cycle fixed accumulate) the cycle count is
	// (trips-1)*II + depth. Trips come from the windpower binding extents.
	trips := int64(96 * 192 * 12)
	if got := c.HLSKernel.Nest.Trips(); got != trips {
		t.Fatalf("nest trips = %d, want N*M*D = %d", got, trips)
	}
	if c.Report.II != 1 {
		t.Fatalf("II = %d, want 1 under 8 ports + fixed point", c.Report.II)
	}
	wantCycles := (trips-1)*int64(c.Report.II) + int64(c.Report.IterLatency)
	if c.Report.LatencyCycle != wantCycles {
		t.Fatalf("schedule latency %d, want (trips-1)*II+depth = %d", c.Report.LatencyCycle, wantCycles)
	}

	// fpga point == executing that schedule on the target device model
	// with the kernel's own transfer footprint.
	dev, err := platform.DeviceByName(c.Design.Bitstream.Target)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := platform.Execute(dev, c.Design.Bitstream, platform.Workload{
		BytesIn: c.InputBytes, BytesOut: c.OutputBytes, Batches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fpga, ok := c.Point(runtime.VariantFPGA)
	if !ok {
		t.Fatal("no fpga operating point")
	}
	if !approx(fpga.LatencySeconds, tl.Total) {
		t.Fatalf("fpga point %.6g != executed schedule %.6g", fpga.LatencySeconds, tl.Total)
	}
	if fpga.DeviceClass != "alveo-u55c" {
		t.Fatalf("fpga device class %q", fpga.DeviceClass)
	}
	if fpga.Resources != c.Design.Bitstream.TotalResources() {
		t.Fatalf("fpga point resources %v != bitstream footprint %v", fpga.Resources, c.Design.Bitstream.TotalResources())
	}

	// Software points == CPU cost model over the scheduled nest.
	wantFlops := CPUFlops(c.HLSKernel.Nest)
	if c.Flops != wantFlops {
		t.Fatalf("derived flops %.6g != cost model %.6g", c.Flops, wantFlops)
	}
	cpu := platform.XeonModel()
	bytes := c.InputBytes + c.OutputBytes
	for _, tc := range []struct {
		variant string
		cores   int
	}{{runtime.VariantCPU1, 1}, {runtime.VariantCPU16, 16}} {
		p, ok := c.Point(tc.variant)
		if !ok {
			t.Fatalf("no %s point", tc.variant)
		}
		want := cpu.TimeSeconds(wantFlops, bytes, tc.cores)
		if !approx(p.LatencySeconds, want) {
			t.Fatalf("%s point %.6g != cost model %.6g", tc.variant, p.LatencySeconds, want)
		}
	}

	// The tuner seeds are exactly the points in ms.
	for _, v := range c.Variants() {
		p, _ := c.Point(v.Name)
		if !approx(v.ExpectedMs, p.LatencySeconds*1000) {
			t.Fatalf("tuner seed %s = %.6g ms, point says %.6g ms", v.Name, v.ExpectedMs, p.LatencySeconds*1000)
		}
	}
}

// TestFormatFlipsTheWinner: the same windpower kernel compiled for an f32
// datapath (5-cycle accumulator feedback, default dual-port PLMs) yields an
// fpga point that loses to cpu16 — and the tuner's choice makes that
// observable — while the fixed-point, banked compilation wins.
func TestFormatFlipsTheWinner(t *testing.T) {
	slow, err := CompileExample("windpower", Options{}) // f32, 2 ports, 1 replica
	if err != nil {
		t.Fatal(err)
	}
	slowTuner, err := slow.NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	if best := slowTuner.Best(); best != runtime.VariantCPU16 {
		t.Fatalf("f32 compile: tuner best = %s, want cpu16 (fpga should lose)", best)
	}
	if !slowTuner.Available(runtime.VariantFPGA) {
		t.Fatal("fpga variant should exist (and lose), not be absent")
	}

	fast, err := CompileExample("windpower", fixedOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	fastTuner, err := fast.NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	if best := fastTuner.Best(); best != runtime.VariantFPGA {
		t.Fatalf("fixed16 compile: tuner best = %s, want fpga", best)
	}
}

func TestTaskSpecIsDerived(t *testing.T) {
	c, err := CompileExample("airquality", fixedOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := c.Task("calib", "prep")
	if spec.Flops != c.Flops || spec.InputBytes != c.InputBytes || spec.OutputBytes != c.OutputBytes {
		t.Fatalf("task workload %+v not derived from compilation %+v", spec, c)
	}
	if !spec.NeedsFPGA || spec.BitstreamID != c.Design.Bitstream.ID {
		t.Fatalf("task offload request %+v not bound to the compiled bitstream", spec)
	}
	if len(spec.Deps) != 1 || spec.Deps[0] != "prep" {
		t.Fatalf("deps = %v", spec.Deps)
	}
}

func TestCompileCFDlangMatmul(t *testing.T) {
	c, err := CompileCFDlang(MatmulCFD(), "matmul", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Frontend != "cfdlang" || c.Kernel != nil {
		t.Fatalf("frontend %q kernel %v", c.Frontend, c.Kernel)
	}
	// C = (A x B) contracted over [2 3]: the contracted pair iterates in
	// lockstep, so the nest is 64 x 96 x 48 — not the rank-4 product space.
	if got := c.HLSKernel.Nest.Trips(); got != 64*96*48 {
		t.Fatalf("matmul trips = %d, want %d", got, 64*96*48)
	}
	if !c.HLSKernel.Nest.Reduction {
		t.Fatal("contraction must mark the nest as a reduction")
	}
	wantCycles := (c.HLSKernel.Nest.Trips()-1)*int64(c.Report.II) + int64(c.Report.IterLatency)
	if c.Report.LatencyCycle != wantCycles {
		t.Fatalf("latency %d, want %d", c.Report.LatencyCycle, wantCycles)
	}
	if _, ok := c.Point(runtime.VariantCPU16); !ok {
		t.Fatal("missing cpu16 point")
	}
	if err := c.Module.Verify(); err != nil {
		t.Fatalf("emitted module does not verify: %v", err)
	}
}

func TestExampleKernelsCompileAndRoundTrip(t *testing.T) {
	for _, name := range ExampleNames() {
		src, binding, err := ExampleKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		k, err := ekl.ParseKernel(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The canonical printer round-trips.
		k2, err := ekl.ParseKernel(k.Source())
		if err != nil {
			t.Fatalf("%s: reparse of printed source: %v", name, err)
		}
		if k.Source() != k2.Source() {
			t.Fatalf("%s: print -> parse -> print unstable", name)
		}
		// And the kernel actually runs under its binding.
		if _, err := k.Run(binding); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, _, err := ExampleKernel("nope"); err == nil {
		t.Fatal("unknown example should error")
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := CompileEKL("kernel k {", ekl.Binding{}, Options{}); err == nil {
		t.Fatal("bad source should error")
	}
	if _, err := CompileExample("windpower", Options{Backend: "nope"}); err == nil {
		t.Fatal("bad backend should error")
	}
	if _, err := CompileExample("windpower", Options{Device: "nope"}); err == nil {
		t.Fatal("bad device should error")
	}
	if _, err := CompileCFDlang("not cfdlang", "x", nil, Options{}); err == nil {
		t.Fatal("bad cfdlang source should error")
	}
}

func TestCPUFlopsWeighting(t *testing.T) {
	base := hls.LoopNest{TripCounts: []int{10}, Body: hls.OpMix{Adds: 2, Muls: 3, Compares: 1}}
	if got := CPUFlops(base); got != 60 {
		t.Fatalf("plain mix = %g, want 60", got)
	}
	heavy := hls.LoopNest{TripCounts: []int{10}, Body: hls.OpMix{Divs: 1, Special: 2}}
	if got := CPUFlops(heavy); got != float64(10*(divFlops+2*specialFlops)) {
		t.Fatalf("weighted mix = %g", got)
	}
	empty := hls.LoopNest{TripCounts: []int{7}, Body: hls.OpMix{Loads: 3}}
	if got := CPUFlops(empty); got != 7 {
		t.Fatalf("memory-only mix = %g, want one flop per iteration floor", got)
	}
}
