// Package variants closes the loop between the EVEREST compilation flow and
// the adaptive runtime (paper §IV–§VI): it carries one kernel from DSL
// source — EKL or the legacy CFDlang frontend — through the MLIR dialect
// stack and HLS scheduling to a set of implementation variants (cpu1 /
// cpu16 / fpga) whose operating points are *derived* rather than declared:
// the fpga point from the HLS schedule executed on the target device model,
// the software points from a CPU cost model over the kernel's loop nest.
// The points seed autotuner.Tuner instances through
// runtime.Workflow.SetVariants, so runtime.Engine places compiler-produced
// variants end to end with no hand-written latency anywhere on the path.
package variants

import (
	"fmt"

	"everest/internal/autotuner"
	"everest/internal/base2"
	"everest/internal/cfdlang"
	"everest/internal/ekl"
	"everest/internal/hls"
	"everest/internal/mlir"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/runtime"
)

// Options configures one compilation.
type Options struct {
	Backend string            // "vitis" or "bambu" (default vitis)
	Format  base2.Format      // datapath format (default f32)
	Device  string            // target device name (default alveo-u55c)
	CPU     platform.CPUModel // software reference (zero value = XeonModel)
	// Olympus holds the system-generation knobs, including
	// olympus.Options.MemPorts — the PLM banking assumption that lifts the
	// memory-pressure floor on the initiation interval.
	Olympus olympus.Options
}

func (o Options) normalize() (hls.Backend, base2.Format, *platform.Device, platform.CPUModel, error) {
	name := o.Backend
	if name == "" {
		name = "vitis"
	}
	backend, err := hls.BackendByName(name)
	if err != nil {
		return nil, nil, nil, platform.CPUModel{}, err
	}
	format := o.Format
	if format == nil {
		format = base2.Float32{}
	}
	devName := o.Device
	if devName == "" {
		devName = "alveo-u55c"
	}
	dev, err := platform.DeviceByName(devName)
	if err != nil {
		return nil, nil, nil, platform.CPUModel{}, err
	}
	cpu := o.CPU
	if cpu.GFLOPs <= 0 {
		cpu = platform.XeonModel()
	}
	return backend, format, dev, cpu, nil
}

// OperatingPoint is one implementation variant's derived characteristics.
type OperatingPoint struct {
	Variant        string  // runtime.VariantCPU1 / VariantCPU16 / VariantFPGA
	LatencySeconds float64 // expected execution latency of one kernel run
	// BoundSeconds is the variant's proven worst-case latency under nominal
	// load: the schedule-derived WCET priced through the device timeline for
	// the fpga variant, the deterministic cost model itself for software
	// (load factors are applied by admission, not here). Invariant:
	// LatencySeconds <= BoundSeconds.
	BoundSeconds float64
	Cores        int // software parallelism (cpu variants)
	// FPGA-only fields.
	Resources   hls.Resources // post-Olympus footprint of the bitstream
	DeviceClass string        // device the bitstream targets
}

// Compiled is the result of one source-to-schedule compilation.
type Compiled struct {
	KernelName string
	Frontend   string       // "ekl" or "cfdlang"
	Module     *mlir.Module // lowered module (frontend -> teil -> affine)
	HLSKernel  hls.Kernel
	Report     hls.Report      // HLS schedule of one accelerator instance
	Design     *olympus.Design // generated system (bitstream carries Report)
	PassStats  []mlir.PassStat
	Kernel     *ekl.Kernel      // EKL frontend only (nil for cfdlang)
	Program    *cfdlang.Program // CFDlang frontend only (nil for ekl)

	// Derived workload model: what one kernel execution costs in software
	// terms, read off the scheduled loop nest — never hand-declared.
	Flops       float64 // CPU cost model flops (op mix x trips, weighted)
	InputBytes  int64
	OutputBytes int64

	Points []OperatingPoint
}

// Point returns the operating point of a variant.
func (c *Compiled) Point(variant string) (OperatingPoint, bool) {
	for _, p := range c.Points {
		if p.Variant == variant {
			return p, true
		}
	}
	return OperatingPoint{}, false
}

// Variants converts the operating points into autotuner seeds (expected
// and worst-case latency in ms), ready for runtime.Workflow.SetVariants.
func (c *Compiled) Variants() []autotuner.Variant {
	out := make([]autotuner.Variant, 0, len(c.Points))
	for _, p := range c.Points {
		ms := p.LatencySeconds * 1000
		if ms <= 0 {
			ms = 1e-6
		}
		boundMs := p.BoundSeconds * 1000
		if boundMs < ms {
			boundMs = ms
		}
		out = append(out, autotuner.Variant{Name: p.Variant, ExpectedMs: ms, BoundMs: boundMs})
	}
	return out
}

// NewTuner builds a variant tuner seeded from the compiled operating points.
func (c *Compiled) NewTuner() (*autotuner.Tuner, error) {
	return autotuner.NewTuner(c.Variants())
}

// Task returns a workflow task whose software cost model and FPGA offload
// request all come from this compilation: the design-time path prices it
// with the derived flops/bytes, and FPGA placements execute the generated
// bitstream (whose latency is the HLS schedule).
func (c *Compiled) Task(name string, deps ...string) runtime.TaskSpec {
	return runtime.TaskSpec{
		Name: name, Deps: deps,
		Flops:       c.Flops,
		InputBytes:  c.InputBytes,
		OutputBytes: c.OutputBytes,
		Cores:       1,
		NeedsFPGA:   true,
		BitstreamID: c.Design.Bitstream.ID,
	}
}

// Software expansion factors of the CPU cost model: a division or an
// exp/log/sqrt-class call retires as an iterative / polynomial sequence on
// a CPU core, not as one flop. The FPGA pays these through the backend
// latency tables instead, which is what opens the offload win for
// special-function-heavy kernels (PTDR, RRTMG) and keeps it closed for
// plain linear algebra — the crossover E-compile schedules around.
const (
	divFlops     = 8
	specialFlops = 20
)

// CPUFlops is the CPU cost model over a scheduled loop nest: the effective
// software flop count of one kernel execution.
func CPUFlops(nest hls.LoopNest) float64 {
	m := nest.Body
	perIter := float64(m.Adds+m.Muls+m.Compares) +
		divFlops*float64(m.Divs) + specialFlops*float64(m.Special)
	if perIter < 1 {
		perIter = 1
	}
	return perIter * float64(nest.Trips())
}

// CompileEKL runs the EKL source through the full flow (parse/check,
// shape-specialize against the binding, lower ekl -> teil -> affine,
// HLS-schedule, generate the system architecture) and derives the variant
// operating points.
func CompileEKL(src string, binding ekl.Binding, opt Options) (*Compiled, error) {
	backend, format, dev, cpu, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	k, err := ekl.ParseKernel(src)
	if err != nil {
		return nil, err
	}
	if err := k.Check(); err != nil {
		return nil, err
	}
	module, res, err := ekl.Lower(k, binding)
	if err != nil {
		return nil, err
	}
	pm := mlir.NewPassManager().Add(ekl.LowerToTeIL(), ekl.LowerToAffine())
	if err := pm.Run(module); err != nil {
		return nil, err
	}

	hk := hls.FromEKLKernel(k, res, format)

	// PLM planning: inputs phase 0, outputs phase 1 (as the SDK façade does).
	var buffers []olympus.Buffer
	elemBytes := int64((format.Bits() + 7) / 8)
	var inBytes, outBytes int64
	for _, in := range k.Inputs {
		if t, ok := res.All[in.Name]; ok {
			n := int64(t.Size()) * elemBytes
			inBytes += n
			buffers = append(buffers, olympus.Buffer{Name: in.Name, Bytes: n, Phase: 0})
		}
	}
	for _, out := range k.Outputs {
		if t, ok := res.All[out.Name]; ok {
			n := int64(t.Size()) * elemBytes
			outBytes += n
			buffers = append(buffers, olympus.Buffer{Name: out.Name, Bytes: n, Phase: 1})
		}
	}
	design, err := olympus.Generate(hk, backend, dev, buffers, opt.Olympus)
	if err != nil {
		return nil, err
	}

	c := &Compiled{
		KernelName: k.Name, Frontend: "ekl",
		// The report is the one inside the generated bitstream: what the
		// runtime executes is exactly what the compiler scheduled.
		Module: module, HLSKernel: hk, Report: design.Bitstream.Report, Design: design,
		PassStats: pm.Stats, Kernel: k,
		Flops: CPUFlops(hk.Nest), InputBytes: inBytes, OutputBytes: outBytes,
	}
	c.Points, err = DerivePoints(design, dev, cpu, c.Flops, inBytes, outBytes)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// DerivePoints computes the variant operating points from compilation
// artifacts only: software latencies from the CPU cost model over the
// derived flops, the fpga latency by executing the generated bitstream —
// whose cycle count is the HLS schedule — on the target device model with
// the kernel's own transfer footprint. The workload shape (4 batches)
// matches what the engine's executors price at dispatch, so the seed and
// the live cost agree when the environment is nominal.
func DerivePoints(design *olympus.Design, dev *platform.Device, cpu platform.CPUModel, flops float64, inBytes, outBytes int64) ([]OperatingPoint, error) {
	bytes := inBytes + outBytes
	cpu1 := cpu.TimeSeconds(flops, bytes, 1)
	cpu16 := cpu.TimeSeconds(flops, bytes, 16)
	points := []OperatingPoint{
		{Variant: runtime.VariantCPU1, LatencySeconds: cpu1, BoundSeconds: cpu1, Cores: 1},
		{Variant: runtime.VariantCPU16, LatencySeconds: cpu16, BoundSeconds: cpu16, Cores: 16},
	}
	wl := platform.Workload{BytesIn: inBytes, BytesOut: outBytes, Batches: 4}
	tl, err := platform.Execute(dev, design.Bitstream, wl)
	if err != nil {
		// A design that does not execute on the device class (e.g. it no
		// longer fits) simply yields no fpga variant; the software points
		// still stand.
		return points, nil //nolint:nilerr
	}
	// The fpga bound re-prices the same timeline at the schedule's WCET —
	// derived from the same Report the bitstream carries, never declared.
	bound, err := platform.ExecuteBound(dev, design.Bitstream, wl)
	if err != nil {
		return nil, err // Execute succeeded, so this can only be a model bug
	}
	points = append(points, OperatingPoint{
		Variant:        runtime.VariantFPGA,
		LatencySeconds: tl.Total,
		BoundSeconds:   bound.Total,
		Resources:      design.Bitstream.TotalResources(),
		DeviceClass:    design.Bitstream.Target,
	})
	return points, nil
}

// Summary renders the operating points as stable text rows (basecamp).
func (c *Compiled) Summary() []string {
	rows := make([]string, 0, len(c.Points))
	for _, p := range c.Points {
		switch p.Variant {
		case runtime.VariantFPGA:
			rows = append(rows, fmt.Sprintf("%-6s : %10.4gms  (%s, %s)",
				p.Variant, p.LatencySeconds*1000, p.DeviceClass, p.Resources))
		default:
			rows = append(rows, fmt.Sprintf("%-6s : %10.4gms  (%d cores)",
				p.Variant, p.LatencySeconds*1000, p.Cores))
		}
	}
	return rows
}
