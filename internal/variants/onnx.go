package variants

import (
	"fmt"
	"strings"

	"everest/internal/autotuner"
	"everest/internal/ekl"
	"everest/internal/onnxlite"
	"everest/internal/tensor"
)

// This file is the ML-model entry point of the variant pipeline (paper
// §V-A: "the SDK supports standard ONNX ML models"): a dense onnxlite
// graph — MatMul / Add / Relu / Softmax chains, the shape the jabbah
// dialect converges ML frontends to — is translated to an EKL kernel and
// compiled through the same MLIR → HLS → Olympus flow as hand-written
// source, so an ONNX model ends up with derived cpu1/cpu16/fpga operating
// points and a deployable bitstream like any other kernel.

// CompileONNX compiles a dense onnxlite model source-to-schedule for the
// given inference batch size. The model must be a single chain of
// MatMul / Add / Relu / Softmax nodes from one rank-2 input to one output,
// with every other operand an initializer; the generated EKL kernel binds
// the model's actual weights, so the reference interpretation of the
// kernel computes exactly what onnxlite.Run computes.
func CompileONNX(m *onnxlite.Model, batch int, opt Options) (*Compiled, error) {
	if m == nil {
		return nil, fmt.Errorf("variants: nil onnx model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if batch < 1 {
		batch = 1
	}
	src, binding, err := onnxToEKL(m, batch)
	if err != nil {
		return nil, err
	}
	c, err := CompileEKL(src, binding, opt)
	if err != nil {
		return nil, fmt.Errorf("variants: onnx model %q: %w", m.Name, err)
	}
	return c, nil
}

// onnxToEKL translates a dense model into EKL source plus the binding that
// carries its weights and a deterministic synthetic input batch.
func onnxToEKL(m *onnxlite.Model, batch int) (string, ekl.Binding, error) {
	if len(m.Inputs) != 1 || len(m.Outputs) != 1 {
		return "", ekl.Binding{}, fmt.Errorf("variants: onnx model %q needs exactly one input and one output", m.Name)
	}
	var inName string
	var inShape []int
	for name, shape := range m.Inputs {
		inName, inShape = name, shape
	}
	if len(inShape) != 2 {
		return "", ekl.Binding{}, fmt.Errorf("variants: onnx input %q must be rank 2, got %v", inName, inShape)
	}
	feat := inShape[1]

	kernelName := sanitizeEKLName(m.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "# generated from onnxlite model %q (batch %d)\n", m.Name, batch)
	fmt.Fprintf(&b, "kernel %s {\n", kernelName)
	inEKL := sanitizeEKLName(inName)
	fmt.Fprintf(&b, "  input %s : [%d, %d]\n", inEKL, batch, feat)

	binding := ekl.Binding{
		Tensors: map[string]*tensor.Tensor{},
		Scalars: map[string]float64{},
	}
	// Deterministic synthetic batch: shapes drive hardware generation, the
	// values only feed the reference interpretation.
	x := tensor.New(batch, feat)
	seed := uint64(0x7f4a7c15ee6d3b1d)
	for i := range x.Data() {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		x.Data()[i] = float64(seed%1000)/500 - 1 // [-1, 1)
	}
	binding.Tensors[inEKL] = x

	// Declare every initializer the chain reads, with its literal shape
	// (once — a tied weight or shared bias may feed several nodes).
	declared := make(map[string]bool)
	for _, n := range m.Nodes {
		for _, arg := range n.Inputs {
			dims, isInit := m.InitDim[arg]
			if !isInit || declared[arg] {
				continue
			}
			declared[arg] = true
			dimStrs := make([]string, len(dims))
			for i, d := range dims {
				dimStrs[i] = fmt.Sprintf("%d", d)
			}
			argEKL := sanitizeEKLName(arg)
			fmt.Fprintf(&b, "  input %s : [%s]\n", argEKL, strings.Join(dimStrs, ", "))
			binding.Tensors[argEKL] = tensor.FromData(append([]float64(nil), m.Init[arg]...), dims...)
		}
	}

	// Walk the chain. prev is the running value's model-level name,
	// prevEKL its identifier in the generated source (Validate guarantees
	// single assignment, so model output names are unique); cols is the
	// running width. Each node must consume prev (plus initializers) and
	// produce the next link.
	prev, prevEKL, cols := inName, inEKL, feat
	colIdx := "c0"
	nextCol := 0
	for _, n := range m.Nodes {
		out := sanitizeEKLName(n.Output)
		switch n.Op {
		case onnxlite.OpMatMul:
			w, dims, err := chainOperand(m, n, prev)
			if err != nil {
				return "", ekl.Binding{}, err
			}
			if len(dims) != 2 || dims[0] != cols {
				return "", ekl.Binding{}, fmt.Errorf("variants: onnx node %q: weight %q shape %v does not match width %d", n.Name, w, dims, cols)
			}
			nextCol++
			red := colIdx
			colIdx = fmt.Sprintf("c%d", nextCol)
			fmt.Fprintf(&b, "  %s = sum(%s) %s[r, %s] * %s[%s, %s]\n",
				out, red, prevEKL, red, sanitizeEKLName(w), red, colIdx)
			cols = dims[1]
		case onnxlite.OpAdd:
			w, dims, err := chainOperand(m, n, prev)
			if err != nil {
				return "", ekl.Binding{}, err
			}
			switch {
			case len(dims) == 1 && dims[0] == cols: // row-broadcast bias
				fmt.Fprintf(&b, "  %s = %s[r, %s] + %s[%s]\n", out, prevEKL, colIdx, sanitizeEKLName(w), colIdx)
			case len(dims) == 2 && dims[0] == batch && dims[1] == cols:
				fmt.Fprintf(&b, "  %s = %s[r, %s] + %s[r, %s]\n", out, prevEKL, colIdx, sanitizeEKLName(w), colIdx)
			default:
				return "", ekl.Binding{}, fmt.Errorf("variants: onnx node %q: Add operand %q shape %v does not broadcast over width %d", n.Name, w, dims, cols)
			}
		case onnxlite.OpRelu:
			if len(n.Inputs) != 1 || n.Inputs[0] != prev {
				return "", ekl.Binding{}, fmt.Errorf("variants: onnx node %q must consume the chain value %q", n.Name, prev)
			}
			fmt.Fprintf(&b, "  %s = max(%s[r, %s], 0.0)\n", out, prevEKL, colIdx)
		case onnxlite.OpSoftmax:
			if len(n.Inputs) != 1 || n.Inputs[0] != prev {
				return "", ekl.Binding{}, fmt.Errorf("variants: onnx node %q must consume the chain value %q", n.Name, prev)
			}
			// Row softmax as exp / row-sum; the hardware path pays the exp
			// through the backend special-function tables.
			fmt.Fprintf(&b, "  %se = exp(%s[r, %s])\n", out, prevEKL, colIdx)
			fmt.Fprintf(&b, "  %sz = sum(%s) %se[r, %s]\n", out, colIdx, out, colIdx)
			fmt.Fprintf(&b, "  %s = %se[r, %s] / %sz[r]\n", out, out, colIdx, out)
		default:
			return "", ekl.Binding{}, fmt.Errorf("variants: onnx op %q has no EKL lowering (dense chains only)", n.Op)
		}
		prev, prevEKL = n.Output, out
	}
	if m.Outputs[0] != m.Nodes[len(m.Nodes)-1].Output {
		return "", ekl.Binding{}, fmt.Errorf("variants: onnx output %q is not the chain tail", m.Outputs[0])
	}
	fmt.Fprintf(&b, "  output %s[r, %s]\n", prevEKL, colIdx)
	b.WriteString("}\n")
	return b.String(), binding, nil
}

// chainOperand returns the one initializer operand of a two-input chain
// node (the other input must be the running chain value).
func chainOperand(m *onnxlite.Model, n onnxlite.Node, prev string) (string, []int, error) {
	if len(n.Inputs) != 2 {
		return "", nil, fmt.Errorf("variants: onnx node %q wants two inputs", n.Name)
	}
	var w string
	switch {
	case n.Inputs[0] == prev:
		w = n.Inputs[1]
	case n.Inputs[1] == prev:
		w = n.Inputs[0]
	default:
		return "", nil, fmt.Errorf("variants: onnx node %q does not consume the chain value %q", n.Name, prev)
	}
	dims, ok := m.InitDim[w]
	if !ok {
		return "", nil, fmt.Errorf("variants: onnx node %q operand %q is not an initializer", n.Name, w)
	}
	return w, dims, nil
}

// sanitizeEKLName maps a model name to an EKL identifier.
func sanitizeEKLName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	s := b.String()
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "m_" + s
	}
	return s
}

// MergeVariants merges the operating points of several compiled kernels
// into one tuner seed set for a DAG whose stages carry different
// bitstreams. The engine keeps one variant tuner per workflow, so the seed
// for each implementation variant is the mean expected latency across the
// kernels offering it — the same per-task averaging the engine's own
// design-time seeding applies. The fpga variant is present when at least
// one kernel derived an fpga point; stages whose kernel has none simply
// never offer fpga placements (their TaskSpec requests a bitstream the
// scheduler cannot find), so the merged seed stays honest.
//
// Bounds compose differently from expectations: the DAG's stages execute
// in sequence, so the merged BoundMs is the SUM of the per-stage bounds —
// a proven worst case for one pass over the whole DAG on that variant.
// One stage without a proven bound (BoundMs 0) voids the merged bound.
func MergeVariants(cs ...*Compiled) []autotuner.Variant {
	sums := make(map[string]float64)
	bounds := make(map[string]float64)
	unbounded := make(map[string]bool)
	counts := make(map[string]int)
	var order []string
	for _, c := range cs {
		if c == nil {
			continue
		}
		for _, v := range c.Variants() {
			if counts[v.Name] == 0 {
				order = append(order, v.Name)
			}
			sums[v.Name] += v.ExpectedMs
			counts[v.Name]++
			if v.BoundMs > 0 {
				bounds[v.Name] += v.BoundMs
			} else {
				unbounded[v.Name] = true
			}
		}
	}
	out := make([]autotuner.Variant, 0, len(order))
	for _, name := range order {
		bound := bounds[name]
		mean := sums[name] / float64(counts[name])
		if unbounded[name] || bound < mean {
			bound = 0
		}
		out = append(out, autotuner.Variant{Name: name, ExpectedMs: mean, BoundMs: bound})
	}
	return out
}
