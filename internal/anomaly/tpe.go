package anomaly

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ParamKind distinguishes hyperparameter domains.
type ParamKind int

// Parameter kinds.
const (
	// ParamFloat is a continuous parameter in [Lo, Hi].
	ParamFloat ParamKind = iota
	// ParamInt is an integer parameter in [Lo, Hi].
	ParamInt
	// ParamCat is a categorical parameter over Cats.
	ParamCat
)

// Param declares one dimension of the search space.
type Param struct {
	Name string
	Kind ParamKind
	Lo   float64
	Hi   float64
	Cats []string
	Log  bool // sample on a log scale (ParamFloat)
}

// Assignment is one sampled point of the search space. Numeric values live
// in Nums, categorical ones in Cats.
type Assignment struct {
	Nums map[string]float64
	Cats map[string]string
}

func newAssignment() Assignment {
	return Assignment{Nums: make(map[string]float64), Cats: make(map[string]string)}
}

// Trial records one evaluated assignment and its loss (lower is better).
type Trial struct {
	Params Assignment
	Loss   float64
}

// TPE is the Tree-structured Parzen Estimator sampler used by Optuna (paper
// ref [1]): after a startup phase of random trials, it splits observations
// at the gamma quantile into good/bad sets, models each with Parzen density
// estimators ℓ(x) and g(x), and proposes the candidate maximizing ℓ/g.
type TPE struct {
	Space      []Param
	Gamma      float64 // quantile split, default 0.25
	Startup    int     // random trials before modelling, default 10
	Candidates int     // EI candidates per suggestion, default 24
	rng        *rand.Rand
	trials     []Trial
}

// NewTPE builds a sampler over the space with a deterministic seed.
func NewTPE(space []Param, seed int64) (*TPE, error) {
	if len(space) == 0 {
		return nil, fmt.Errorf("anomaly: empty search space")
	}
	for _, p := range space {
		switch p.Kind {
		case ParamCat:
			if len(p.Cats) == 0 {
				return nil, fmt.Errorf("anomaly: categorical %q has no categories", p.Name)
			}
		default:
			if p.Hi < p.Lo {
				return nil, fmt.Errorf("anomaly: param %q has inverted range", p.Name)
			}
			if p.Log && p.Lo <= 0 {
				return nil, fmt.Errorf("anomaly: log-scale param %q needs positive bounds", p.Name)
			}
		}
	}
	return &TPE{
		Space: space, Gamma: 0.25, Startup: 10, Candidates: 24,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Trials returns a copy of all observed trials.
func (t *TPE) Trials() []Trial { return append([]Trial(nil), t.trials...) }

// Best returns the best (lowest loss) trial so far.
func (t *TPE) Best() (Trial, bool) {
	if len(t.trials) == 0 {
		return Trial{}, false
	}
	best := t.trials[0]
	for _, tr := range t.trials[1:] {
		if tr.Loss < best.Loss {
			best = tr
		}
	}
	return best, true
}

// Suggest proposes the next assignment to evaluate.
func (t *TPE) Suggest() Assignment {
	if len(t.trials) < t.Startup {
		return t.sampleRandom()
	}
	good, bad := t.split()
	bestScore := math.Inf(-1)
	var best Assignment
	for c := 0; c < t.Candidates; c++ {
		cand := t.sampleFrom(good)
		score := t.logDensity(cand, good) - t.logDensity(cand, bad)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// Observe records the loss of an evaluated assignment.
func (t *TPE) Observe(a Assignment, loss float64) {
	t.trials = append(t.trials, Trial{Params: a, Loss: loss})
}

func (t *TPE) split() (good, bad []Trial) {
	sorted := append([]Trial(nil), t.trials...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Loss < sorted[j].Loss })
	nGood := int(math.Ceil(t.Gamma * float64(len(sorted))))
	if nGood < 1 {
		nGood = 1
	}
	if nGood >= len(sorted) {
		nGood = len(sorted) - 1
	}
	return sorted[:nGood], sorted[nGood:]
}

func (t *TPE) sampleRandom() Assignment {
	a := newAssignment()
	for _, p := range t.Space {
		switch p.Kind {
		case ParamCat:
			a.Cats[p.Name] = p.Cats[t.rng.Intn(len(p.Cats))]
		case ParamInt:
			a.Nums[p.Name] = math.Floor(p.Lo + t.rng.Float64()*(p.Hi-p.Lo+1))
			if a.Nums[p.Name] > p.Hi {
				a.Nums[p.Name] = p.Hi
			}
		default:
			if p.Log {
				a.Nums[p.Name] = math.Exp(math.Log(p.Lo) + t.rng.Float64()*(math.Log(p.Hi)-math.Log(p.Lo)))
			} else {
				a.Nums[p.Name] = p.Lo + t.rng.Float64()*(p.Hi-p.Lo)
			}
		}
	}
	return a
}

// sampleFrom draws an assignment from the Parzen mixture of a trial set:
// pick a random kernel (trial) per parameter and perturb.
func (t *TPE) sampleFrom(set []Trial) Assignment {
	a := newAssignment()
	for _, p := range t.Space {
		pick := set[t.rng.Intn(len(set))]
		switch p.Kind {
		case ParamCat:
			// Mix the empirical distribution with a uniform prior.
			if t.rng.Float64() < 0.8 {
				a.Cats[p.Name] = pick.Params.Cats[p.Name]
			} else {
				a.Cats[p.Name] = p.Cats[t.rng.Intn(len(p.Cats))]
			}
		default:
			width := t.bandwidth(p)
			v := pick.Params.Nums[p.Name] + t.rng.NormFloat64()*width
			v = clamp(v, p.Lo, p.Hi)
			if p.Kind == ParamInt {
				v = math.Round(v)
			}
			a.Nums[p.Name] = v
		}
	}
	return a
}

func (t *TPE) bandwidth(p Param) float64 {
	span := p.Hi - p.Lo
	if span <= 0 {
		return 1
	}
	return span / 5
}

// logDensity evaluates the Parzen mixture log-density of an assignment
// under a trial set (diagonal product over parameters).
func (t *TPE) logDensity(a Assignment, set []Trial) float64 {
	total := 0.0
	for _, p := range t.Space {
		switch p.Kind {
		case ParamCat:
			count := 1.0 // Laplace smoothing
			for _, tr := range set {
				if tr.Params.Cats[p.Name] == a.Cats[p.Name] {
					count++
				}
			}
			total += math.Log(count / (float64(len(set)) + float64(len(p.Cats))))
		default:
			width := t.bandwidth(p)
			mix := 0.0
			for _, tr := range set {
				d := (a.Nums[p.Name] - tr.Params.Nums[p.Name]) / width
				mix += math.Exp(-0.5*d*d) / width
			}
			total += math.Log(mix/float64(len(set)) + 1e-300)
		}
	}
	return total
}

// RandomSearch is the E8 baseline: uniform sampling with the same API.
type RandomSearch struct {
	Space []Param
	rng   *rand.Rand
	inner *TPE
}

// NewRandomSearch builds a random sampler.
func NewRandomSearch(space []Param, seed int64) (*RandomSearch, error) {
	t, err := NewTPE(space, seed)
	if err != nil {
		return nil, err
	}
	t.Startup = math.MaxInt32 // never leave the random phase
	return &RandomSearch{Space: space, inner: t}, nil
}

// Suggest proposes a uniform random assignment.
func (r *RandomSearch) Suggest() Assignment { return r.inner.Suggest() }

// Observe records a trial.
func (r *RandomSearch) Observe(a Assignment, loss float64) { r.inner.Observe(a, loss) }

// Best returns the best trial so far.
func (r *RandomSearch) Best() (Trial, bool) { return r.inner.Best() }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
