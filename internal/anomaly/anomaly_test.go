package anomaly

import (
	"math/rand"
	"strings"
	"testing"

	"everest/internal/tensor"
)

// syntheticData builds a 2-feature Gaussian cloud with planted anomalies.
func syntheticData(rng *rand.Rand, n, nAnom int) (*tensor.Tensor, []bool) {
	x := tensor.New(n, 2)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x.Set(rng.NormFloat64(), i, 0)
		x.Set(rng.NormFloat64()*0.5+1, i, 1)
	}
	// Plant anomalies at deterministic positions.
	for k := 0; k < nAnom; k++ {
		i := (k*17 + 3) % n
		x.Set(8+rng.Float64()*4, i, 0)
		x.Set(-6-rng.Float64()*3, i, 1)
		labels[i] = true
	}
	return x, labels
}

func detectorsUnderTest() []Detector {
	return []Detector{
		&ZScore{}, &IQR{}, &Mahalanobis{}, &IsolationForest{Trees: 50, Seed: 1}, &LOF{K: 8},
	}
}

// globalDetectors are the detectors expected to separate *clustered*
// outliers; LOF by design scores clustered anomalies as locally normal, so
// it gets its own scattered-anomaly test below.
func globalDetectors() []Detector {
	return []Detector{
		&ZScore{}, &IQR{}, &Mahalanobis{}, &IsolationForest{Trees: 50, Seed: 1},
	}
}

func TestDetectorsSeparateAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data, labels := syntheticData(rng, 300, 10)
	for _, d := range globalDetectors() {
		if err := d.Fit(data); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		// Mean anomaly score of planted outliers must exceed mean score of
		// normal points by a clear margin.
		var anomSum, normSum float64
		var anomN, normN int
		p := make([]float64, 2)
		for i := 0; i < data.Shape()[0]; i++ {
			p[0], p[1] = data.At(i, 0), data.At(i, 1)
			s, err := d.Score(p)
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if labels[i] {
				anomSum += s
				anomN++
			} else {
				normSum += s
				normN++
			}
		}
		anomMean := anomSum / float64(anomN)
		normMean := normSum / float64(normN)
		if anomMean <= normMean*1.2 {
			t.Errorf("%s: anomaly mean %g not separated from normal mean %g",
				d.Name(), anomMean, normMean)
		}
	}
}

func TestLOFSeparatesScatteredAnomalies(t *testing.T) {
	// LOF is a *local* density method: it flags isolated points, not dense
	// anomaly clusters. Plant 4 mutually distant outliers.
	rng := rand.New(rand.NewSource(13))
	n := 300
	x := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		x.Set(rng.NormFloat64(), i, 0)
		x.Set(rng.NormFloat64()*0.5+1, i, 1)
	}
	outliers := [][2]float64{{10, 10}, {-10, 8}, {9, -9}, {-8, -11}}
	labels := make([]bool, n)
	for k, o := range outliers {
		i := k * 70
		x.Set(o[0], i, 0)
		x.Set(o[1], i, 1)
		labels[i] = true
	}
	d := &LOF{K: 8}
	if err := d.Fit(x); err != nil {
		t.Fatal(err)
	}
	var anomMin, normMax float64
	anomMin = 1e18
	p := make([]float64, 2)
	for i := 0; i < n; i++ {
		p[0], p[1] = x.At(i, 0), x.At(i, 1)
		s, err := d.Score(p)
		if err != nil {
			t.Fatal(err)
		}
		if labels[i] {
			if s < anomMin {
				anomMin = s
			}
		} else if s > normMax {
			normMax = s
		}
	}
	if anomMin <= normMax {
		t.Errorf("LOF: weakest outlier score %g must exceed strongest inlier %g", anomMin, normMax)
	}
}

func TestDetectorValidation(t *testing.T) {
	for _, d := range detectorsUnderTest() {
		if err := d.Fit(tensor.New(1, 2)); err == nil {
			t.Errorf("%s: single sample must fail", d.Name())
		}
		if err := d.Fit(tensor.New(4)); err == nil {
			t.Errorf("%s: rank-1 input must fail", d.Name())
		}
	}
	z := &ZScore{}
	if err := z.Fit(tensor.New(10, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Score([]float64{1}); err == nil {
		t.Error("wrong feature count must fail")
	}
}

func TestIsolationForestScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := syntheticData(rng, 200, 5)
	f := &IsolationForest{Trees: 64, Seed: 2}
	if err := f.Fit(data); err != nil {
		t.Fatal(err)
	}
	p := []float64{0, 1}
	s, err := f.Score(p)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1 {
		t.Errorf("iforest score %g must lie in (0,1)", s)
	}
	far, _ := f.Score([]float64{100, -100})
	if far <= s {
		t.Error("distant point must score higher")
	}
}

func TestEvaluateF1Perfect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data, labels := syntheticData(rng, 200, 8)
	f1, err := EvaluateF1(&Mahalanobis{}, data, data, labels, 8.0/200)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 0.9 {
		t.Errorf("clear anomalies should give F1 >= 0.9, got %g", f1)
	}
}

func TestTPEValidation(t *testing.T) {
	if _, err := NewTPE(nil, 1); err == nil {
		t.Error("empty space must fail")
	}
	if _, err := NewTPE([]Param{{Name: "c", Kind: ParamCat}}, 1); err == nil {
		t.Error("categorical without categories must fail")
	}
	if _, err := NewTPE([]Param{{Name: "x", Kind: ParamFloat, Lo: 2, Hi: 1}}, 1); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := NewTPE([]Param{{Name: "x", Kind: ParamFloat, Lo: -1, Hi: 1, Log: true}}, 1); err == nil {
		t.Error("log scale with non-positive lo must fail")
	}
}

func TestTPEConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)^2 + (y+1)^2 over [-10,10]^2.
	space := []Param{
		{Name: "x", Kind: ParamFloat, Lo: -10, Hi: 10},
		{Name: "y", Kind: ParamFloat, Lo: -10, Hi: 10},
	}
	tpe, err := NewTPE(space, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		a := tpe.Suggest()
		x, y := a.Nums["x"], a.Nums["y"]
		tpe.Observe(a, (x-3)*(x-3)+(y+1)*(y+1))
	}
	best, ok := tpe.Best()
	if !ok {
		t.Fatal("no best trial")
	}
	if best.Loss > 2.0 {
		t.Errorf("TPE best loss %g too high after 80 trials", best.Loss)
	}
}

func TestTPEBeatsRandomOnAverage(t *testing.T) {
	// E8 core claim: at equal budget, TPE's best loss should beat random
	// search on a moderately hard objective, averaged over seeds.
	space := []Param{
		{Name: "x", Kind: ParamFloat, Lo: 0, Hi: 1},
		{Name: "y", Kind: ParamFloat, Lo: 0, Hi: 1},
		{Name: "z", Kind: ParamFloat, Lo: 0, Hi: 1},
	}
	objective := func(a Assignment) float64 {
		x, y, z := a.Nums["x"], a.Nums["y"], a.Nums["z"]
		return (x-0.8)*(x-0.8) + 2*(y-0.2)*(y-0.2) + 0.5*(z-0.6)*(z-0.6)
	}
	budget := 60
	var tpeTotal, rndTotal float64
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		tpe, _ := NewTPE(space, seed)
		for i := 0; i < budget; i++ {
			a := tpe.Suggest()
			tpe.Observe(a, objective(a))
		}
		bt, _ := tpe.Best()
		tpeTotal += bt.Loss

		rnd, _ := NewRandomSearch(space, seed)
		for i := 0; i < budget; i++ {
			a := rnd.Suggest()
			rnd.Observe(a, objective(a))
		}
		br, _ := rnd.Best()
		rndTotal += br.Loss
	}
	if tpeTotal >= rndTotal {
		t.Errorf("TPE mean best loss %g must beat random %g", tpeTotal/8, rndTotal/8)
	}
}

func TestSelectModelFindsGoodDetector(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	train, _ := syntheticData(rng, 200, 0)
	val, labels := syntheticData(rng, 200, 10)
	tpe, err := NewTPE(DetectorSpace(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SelectModel(train, val, labels, 10.0/200, 30, tpe)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestF1 < 0.8 {
		t.Errorf("model selection best F1 = %g, want >= 0.8", res.BestF1)
	}
	if res.Detector == nil {
		t.Error("result must carry a fitted detector")
	}
	if res.Trials != 30 {
		t.Errorf("trials = %d, want 30", res.Trials)
	}
}

func TestDetectionNodeJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	train, _ := syntheticData(rng, 200, 0)
	det := &Mahalanobis{}
	if err := det.Fit(train); err != nil {
		t.Fatal(err)
	}
	node := &DetectionNode{Detector: det}
	if err := node.CalibrateThreshold(train, 0.05); err != nil {
		t.Fatal(err)
	}
	batch, labels := syntheticData(rng, 100, 5)
	rep, err := node.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalies) == 0 {
		t.Fatal("planted anomalies must be flagged")
	}
	// All planted anomalies should be among the flagged indexes.
	flagged := make(map[int]bool)
	for _, i := range rep.Anomalies {
		flagged[i] = true
	}
	for i, lab := range labels {
		if lab && !flagged[i] {
			t.Errorf("planted anomaly at %d missed", i)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, `"anomalies"`) || !strings.Contains(js, `"threshold"`) {
		t.Errorf("JSON missing fields: %s", js)
	}
}

func TestDetectionNodeOnlineUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	train, _ := syntheticData(rng, 100, 0)
	det := &ZScore{}
	if err := det.Fit(train); err != nil {
		t.Fatal(err)
	}
	node := &DetectionNode{Detector: det, WindowSize: 2}
	b1, _ := syntheticData(rng, 50, 0)
	b2, _ := syntheticData(rng, 50, 0)
	b3, _ := syntheticData(rng, 50, 0)
	for _, b := range []*tensor.Tensor{b1, b2, b3} {
		if err := node.Update(b); err != nil {
			t.Fatal(err)
		}
	}
	// Window keeps only 2 batches.
	if len(node.window) != 2 {
		t.Errorf("window size = %d, want 2", len(node.window))
	}
}

func TestLoadCSV(t *testing.T) {
	src := "a,b,c\n1,2,3\n4,5,6\n"
	got, err := LoadCSV(strings.NewReader(src), DataConfig{SkipRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape()[0] != 2 || got.Shape()[1] != 3 || got.At(1, 2) != 6 {
		t.Errorf("LoadCSV = %v", got)
	}
	// Column subset (the "specific subset of data" of §VII).
	sub, err := LoadCSV(strings.NewReader(src), DataConfig{SkipRows: 1, Columns: []int{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 3 || sub.At(0, 1) != 1 {
		t.Errorf("column subset wrong: %v", sub)
	}
	// Errors.
	if _, err := LoadCSV(strings.NewReader("x,y\n"), DataConfig{SkipRows: 1}); err == nil {
		t.Error("empty after header must fail")
	}
	if _, err := LoadCSV(strings.NewReader("1,notnum\n"), DataConfig{}); err == nil {
		t.Error("non-numeric must fail")
	}
	if _, err := LoadCSV(strings.NewReader("1,2\n"), DataConfig{Columns: []int{5}}); err == nil {
		t.Error("out-of-range column must fail")
	}
}

func TestBuildDetectorUnknown(t *testing.T) {
	a := newAssignment()
	a.Cats["detector"] = "oracle"
	if _, err := BuildDetector(a); err == nil {
		t.Error("unknown detector must fail")
	}
}
