// Package anomaly implements the EVEREST anomaly detection service (paper
// §VII): detectors deployable at any point of a workflow for input
// sanitization and security-event detection, an AutoML model-selection node
// built on the Tree-structured Parzen Estimator (the hyperparameter sampler
// of Optuna, paper ref [1]), and a detection node that emits the indexes of
// anomalous data points as JSON.
package anomaly

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"everest/internal/tensor"
)

// Detector scores data points; higher scores are more anomalous.
type Detector interface {
	// Name identifies the detector family.
	Name() string
	// Fit trains on a sample matrix (rows = points, cols = features).
	Fit(x *tensor.Tensor) error
	// Score returns the anomaly score of one point.
	Score(p []float64) (float64, error)
}

func checkMatrix(x *tensor.Tensor) (rows, cols int, err error) {
	if x == nil || x.Rank() != 2 {
		return 0, 0, fmt.Errorf("anomaly: want a rank-2 sample matrix")
	}
	rows, cols = x.Shape()[0], x.Shape()[1]
	if rows < 2 || cols < 1 {
		return 0, 0, fmt.Errorf("anomaly: need at least 2 samples and 1 feature, got %dx%d", rows, cols)
	}
	return rows, cols, nil
}

// ZScore scores a point by its maximum per-feature |z| value.
type ZScore struct {
	mean, std []float64
}

// Name implements Detector.
func (*ZScore) Name() string { return "zscore" }

// Fit implements Detector.
func (z *ZScore) Fit(x *tensor.Tensor) error {
	rows, cols, err := checkMatrix(x)
	if err != nil {
		return err
	}
	z.mean = make([]float64, cols)
	z.std = make([]float64, cols)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			s += x.At(i, j)
		}
		mu := s / float64(rows)
		v := 0.0
		for i := 0; i < rows; i++ {
			d := x.At(i, j) - mu
			v += d * d
		}
		z.mean[j] = mu
		z.std[j] = math.Sqrt(v/float64(rows)) + 1e-12
	}
	return nil
}

// Score implements Detector.
func (z *ZScore) Score(p []float64) (float64, error) {
	if len(p) != len(z.mean) {
		return 0, fmt.Errorf("anomaly: zscore expects %d features, got %d", len(z.mean), len(p))
	}
	worst := 0.0
	for j, v := range p {
		if s := math.Abs(v-z.mean[j]) / z.std[j]; s > worst {
			worst = s
		}
	}
	return worst, nil
}

// IQR scores by distance beyond the per-feature interquartile fences,
// scaled by K (the classic 1.5 factor is the default).
type IQR struct {
	K      float64
	q1, q3 []float64
	iqr    []float64
}

// Name implements Detector.
func (*IQR) Name() string { return "iqr" }

// Fit implements Detector.
func (d *IQR) Fit(x *tensor.Tensor) error {
	rows, cols, err := checkMatrix(x)
	if err != nil {
		return err
	}
	if d.K <= 0 {
		d.K = 1.5
	}
	d.q1 = make([]float64, cols)
	d.q3 = make([]float64, cols)
	d.iqr = make([]float64, cols)
	col := make([]float64, rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = x.At(i, j)
		}
		sort.Float64s(col)
		d.q1[j] = quantile(col, 0.25)
		d.q3[j] = quantile(col, 0.75)
		d.iqr[j] = d.q3[j] - d.q1[j] + 1e-12
	}
	return nil
}

// Score implements Detector.
func (d *IQR) Score(p []float64) (float64, error) {
	if len(p) != len(d.q1) {
		return 0, fmt.Errorf("anomaly: iqr expects %d features, got %d", len(d.q1), len(p))
	}
	worst := 0.0
	for j, v := range p {
		lo := d.q1[j] - d.K*d.iqr[j]
		hi := d.q3[j] + d.K*d.iqr[j]
		var s float64
		switch {
		case v < lo:
			s = (lo - v) / d.iqr[j]
		case v > hi:
			s = (v - hi) / d.iqr[j]
		}
		if s > worst {
			worst = s
		}
	}
	return worst, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mahalanobis scores by the Mahalanobis distance to the training
// distribution (full covariance with ridge regularization).
type Mahalanobis struct {
	Ridge float64
	mean  *tensor.Tensor
	prec  *tensor.Tensor // inverse covariance
}

// Name implements Detector.
func (*Mahalanobis) Name() string { return "mahalanobis" }

// Fit implements Detector.
func (m *Mahalanobis) Fit(x *tensor.Tensor) error {
	_, cols, err := checkMatrix(x)
	if err != nil {
		return err
	}
	if m.Ridge <= 0 {
		m.Ridge = 1e-6
	}
	m.mean = tensor.Mean2(x)
	cov := tensor.Covariance(x)
	for j := 0; j < cols; j++ {
		cov.Set(cov.At(j, j)+m.Ridge, j, j)
	}
	prec, err := tensor.Inverse2(cov)
	if err != nil {
		return fmt.Errorf("anomaly: covariance not invertible: %w", err)
	}
	m.prec = prec
	return nil
}

// Score implements Detector.
func (m *Mahalanobis) Score(p []float64) (float64, error) {
	if len(p) != m.mean.Size() {
		return 0, fmt.Errorf("anomaly: mahalanobis expects %d features, got %d", m.mean.Size(), len(p))
	}
	d := make([]float64, len(p))
	for j, v := range p {
		d[j] = v - m.mean.At(j)
	}
	dv := tensor.FromData(d, len(d))
	md := tensor.Dot(dv, tensor.MatVec(m.prec, dv))
	if md < 0 {
		md = 0
	}
	return math.Sqrt(md), nil
}

// IsolationForest is the classic isolation forest (Liu et al.): anomalies
// isolate in few random splits. Score is 2^(-E[h]/c(n)) in (0,1).
type IsolationForest struct {
	Trees     int
	SubSample int
	Seed      int64
	forest    []*isoNode
	c         float64
	dims      int
}

type isoNode struct {
	feature     int
	split       float64
	size        int
	left, right *isoNode
}

// Name implements Detector.
func (*IsolationForest) Name() string { return "iforest" }

// Fit implements Detector.
func (f *IsolationForest) Fit(x *tensor.Tensor) error {
	rows, cols, err := checkMatrix(x)
	if err != nil {
		return err
	}
	if f.Trees <= 0 {
		f.Trees = 100
	}
	if f.SubSample <= 0 || f.SubSample > rows {
		f.SubSample = min(256, rows)
	}
	f.dims = cols
	rng := rand.New(rand.NewSource(f.Seed + 1))
	maxDepth := int(math.Ceil(math.Log2(float64(f.SubSample)))) + 1

	f.forest = f.forest[:0]
	for t := 0; t < f.Trees; t++ {
		idx := rng.Perm(rows)[:f.SubSample]
		sample := make([][]float64, len(idx))
		for i, r := range idx {
			row := make([]float64, cols)
			for j := 0; j < cols; j++ {
				row[j] = x.At(r, j)
			}
			sample[i] = row
		}
		f.forest = append(f.forest, buildIsoTree(sample, 0, maxDepth, rng))
	}
	f.c = avgPathLength(f.SubSample)
	return nil
}

func buildIsoTree(sample [][]float64, depth, maxDepth int, rng *rand.Rand) *isoNode {
	n := len(sample)
	if n <= 1 || depth >= maxDepth {
		return &isoNode{size: n}
	}
	cols := len(sample[0])
	feature := rng.Intn(cols)
	lo, hi := sample[0][feature], sample[0][feature]
	for _, row := range sample {
		if row[feature] < lo {
			lo = row[feature]
		}
		if row[feature] > hi {
			hi = row[feature]
		}
	}
	if hi <= lo {
		return &isoNode{size: n}
	}
	split := lo + rng.Float64()*(hi-lo)
	var left, right [][]float64
	for _, row := range sample {
		if row[feature] < split {
			left = append(left, row)
		} else {
			right = append(right, row)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &isoNode{size: n}
	}
	return &isoNode{
		feature: feature, split: split, size: n,
		left:  buildIsoTree(left, depth+1, maxDepth, rng),
		right: buildIsoTree(right, depth+1, maxDepth, rng),
	}
}

func pathLength(node *isoNode, p []float64, depth int) float64 {
	if node.left == nil && node.right == nil {
		return float64(depth) + avgPathLength(node.size)
	}
	if p[node.feature] < node.split {
		return pathLength(node.left, p, depth+1)
	}
	return pathLength(node.right, p, depth+1)
}

// avgPathLength is c(n): the average path length of unsuccessful BST search.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

// Score implements Detector.
func (f *IsolationForest) Score(p []float64) (float64, error) {
	if len(f.forest) == 0 {
		return 0, fmt.Errorf("anomaly: iforest not fitted")
	}
	if len(p) != f.dims {
		return 0, fmt.Errorf("anomaly: iforest expects %d features, got %d", f.dims, len(p))
	}
	sum := 0.0
	for _, tree := range f.forest {
		sum += pathLength(tree, p, 0)
	}
	mean := sum / float64(len(f.forest))
	return math.Pow(2, -mean/f.c), nil
}

// LOF is the local outlier factor over the training set (Breunig et al.).
type LOF struct {
	K     int
	data  [][]float64
	kdist []float64
	lrd   []float64
}

// Name implements Detector.
func (*LOF) Name() string { return "lof" }

// Fit implements Detector.
func (l *LOF) Fit(x *tensor.Tensor) error {
	rows, cols, err := checkMatrix(x)
	if err != nil {
		return err
	}
	if l.K <= 0 {
		l.K = 10
	}
	if l.K >= rows {
		l.K = rows - 1
	}
	l.data = make([][]float64, rows)
	for i := 0; i < rows; i++ {
		row := make([]float64, cols)
		for j := 0; j < cols; j++ {
			row[j] = x.At(i, j)
		}
		l.data[i] = row
	}
	// k-distance and local reachability density of every training point.
	l.kdist = make([]float64, rows)
	neigh := make([][]int, rows)
	for i := 0; i < rows; i++ {
		d := l.distancesFrom(l.data[i], i)
		idx := argsort(d)
		neigh[i] = idx[:l.K]
		l.kdist[i] = d[idx[l.K-1]]
	}
	l.lrd = make([]float64, rows)
	for i := 0; i < rows; i++ {
		sum := 0.0
		for _, j := range neigh[i] {
			reach := math.Max(l.kdist[j], dist(l.data[i], l.data[j]))
			sum += reach
		}
		l.lrd[i] = float64(l.K) / (sum + 1e-12)
	}
	return nil
}

func (l *LOF) distancesFrom(p []float64, exclude int) []float64 {
	d := make([]float64, len(l.data))
	for i, q := range l.data {
		if i == exclude {
			d[i] = math.Inf(1)
			continue
		}
		d[i] = dist(p, q)
	}
	return d
}

// Score implements Detector.
func (l *LOF) Score(p []float64) (float64, error) {
	if len(l.data) == 0 {
		return 0, fmt.Errorf("anomaly: lof not fitted")
	}
	if len(p) != len(l.data[0]) {
		return 0, fmt.Errorf("anomaly: lof expects %d features, got %d", len(l.data[0]), len(p))
	}
	d := l.distancesFrom(p, -1)
	idx := argsort(d)
	k := l.K
	sumReach := 0.0
	sumLrd := 0.0
	for _, j := range idx[:k] {
		sumReach += math.Max(l.kdist[j], d[j])
		sumLrd += l.lrd[j]
	}
	lrdP := float64(k) / (sumReach + 1e-12)
	return (sumLrd / float64(k)) / (lrdP + 1e-12), nil
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func argsort(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	return idx
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
