package anomaly

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"everest/internal/tensor"
)

// Sampler is the common interface of TPE and RandomSearch.
type Sampler interface {
	Suggest() Assignment
	Observe(a Assignment, loss float64)
	Best() (Trial, bool)
}

// DetectorSpace returns the model-selection search space of the §VII node:
// the detector family plus its hyperparameters.
func DetectorSpace() []Param {
	return []Param{
		{Name: "detector", Kind: ParamCat, Cats: []string{"zscore", "iqr", "mahalanobis", "iforest", "lof"}},
		{Name: "iqr_k", Kind: ParamFloat, Lo: 0.5, Hi: 4.0},
		{Name: "if_trees", Kind: ParamInt, Lo: 20, Hi: 200},
		{Name: "lof_k", Kind: ParamInt, Lo: 3, Hi: 40},
		{Name: "ridge", Kind: ParamFloat, Lo: 1e-8, Hi: 1e-2, Log: true},
	}
}

// BuildDetector instantiates the detector encoded by an assignment.
func BuildDetector(a Assignment) (Detector, error) {
	switch a.Cats["detector"] {
	case "zscore":
		return &ZScore{}, nil
	case "iqr":
		return &IQR{K: a.Nums["iqr_k"]}, nil
	case "mahalanobis":
		return &Mahalanobis{Ridge: a.Nums["ridge"]}, nil
	case "iforest":
		return &IsolationForest{Trees: int(a.Nums["if_trees"]), Seed: 7}, nil
	case "lof":
		return &LOF{K: int(a.Nums["lof_k"])}, nil
	default:
		return nil, fmt.Errorf("anomaly: unknown detector %q", a.Cats["detector"])
	}
}

// EvaluateF1 fits the detector on train, scores the validation set, flags
// the top `contamination` fraction, and returns the F1 score against the
// labels.
func EvaluateF1(d Detector, train, val *tensor.Tensor, labels []bool, contamination float64) (float64, error) {
	if err := d.Fit(train); err != nil {
		return 0, err
	}
	rows := val.Shape()[0]
	if rows != len(labels) {
		return 0, fmt.Errorf("anomaly: %d validation rows but %d labels", rows, len(labels))
	}
	scores := make([]float64, rows)
	point := make([]float64, val.Shape()[1])
	for i := 0; i < rows; i++ {
		for j := range point {
			point[j] = val.At(i, j)
		}
		s, err := d.Score(point)
		if err != nil {
			return 0, err
		}
		scores[i] = s
	}
	nFlag := int(math.Round(contamination * float64(rows)))
	if nFlag < 1 {
		nFlag = 1
	}
	idx := argsort(scores)
	flagged := make([]bool, rows)
	for k := 0; k < nFlag; k++ {
		flagged[idx[rows-1-k]] = true
	}
	tp, fp, fn := 0, 0, 0
	for i := range labels {
		switch {
		case flagged[i] && labels[i]:
			tp++
		case flagged[i] && !labels[i]:
			fp++
		case !flagged[i] && labels[i]:
			fn++
		}
	}
	if tp == 0 {
		return 0, nil
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec), nil
}

// SelectionResult is the output of the model-selection node.
type SelectionResult struct {
	Best     Assignment
	BestF1   float64
	Trials   int
	Detector Detector
}

// SelectModel is the §VII model-selection node: it spends `budget` trials
// of the sampler searching for the detector+hyperparameters maximizing F1
// on the validation split, then returns the best model fitted on train.
func SelectModel(train, val *tensor.Tensor, labels []bool, contamination float64, budget int, s Sampler) (*SelectionResult, error) {
	if budget < 1 {
		return nil, fmt.Errorf("anomaly: need a positive trial budget")
	}
	for i := 0; i < budget; i++ {
		a := s.Suggest()
		d, err := BuildDetector(a)
		if err != nil {
			s.Observe(a, 1)
			continue
		}
		f1, err := EvaluateF1(d, train, val, labels, contamination)
		if err != nil {
			s.Observe(a, 1)
			continue
		}
		s.Observe(a, 1-f1) // loss
	}
	best, ok := s.Best()
	if !ok {
		return nil, fmt.Errorf("anomaly: no successful trials")
	}
	d, err := BuildDetector(best.Params)
	if err != nil {
		return nil, err
	}
	if err := d.Fit(train); err != nil {
		return nil, err
	}
	return &SelectionResult{
		Best: best.Params, BestF1: 1 - best.Loss, Trials: budget, Detector: d,
	}, nil
}

// Report is the detection node's JSON output: "a JSON file containing the
// indexes of data points that are considered anomalous".
type Report struct {
	Anomalies []int     `json:"anomalies"`
	Threshold float64   `json:"threshold"`
	Scores    []float64 `json:"scores,omitempty"`
}

// JSON renders the report.
func (r Report) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DetectionNode runs a fitted detector over incoming data and continuously
// updates the model with current data (§VII).
type DetectionNode struct {
	Detector  Detector
	Threshold float64
	// WindowSize bounds the sliding window used for model updates.
	WindowSize int
	window     []*tensor.Tensor
}

// CalibrateThreshold sets the detection threshold at the (1-contamination)
// quantile of the training scores.
func (n *DetectionNode) CalibrateThreshold(train *tensor.Tensor, contamination float64) error {
	rows := train.Shape()[0]
	scores := make([]float64, rows)
	point := make([]float64, train.Shape()[1])
	for i := 0; i < rows; i++ {
		for j := range point {
			point[j] = train.At(i, j)
		}
		s, err := n.Detector.Score(point)
		if err != nil {
			return err
		}
		scores[i] = s
	}
	sort.Float64s(scores)
	n.Threshold = quantile(scores, 1-contamination)
	return nil
}

// Detect scores a batch and returns the report.
func (n *DetectionNode) Detect(data *tensor.Tensor) (Report, error) {
	rows, cols, err := checkMatrix(data)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Threshold: n.Threshold, Scores: make([]float64, rows)}
	point := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := range point {
			point[j] = data.At(i, j)
		}
		s, err := n.Detector.Score(point)
		if err != nil {
			return Report{}, err
		}
		rep.Scores[i] = s
		if s > n.Threshold {
			rep.Anomalies = append(rep.Anomalies, i)
		}
	}
	return rep, nil
}

// Update feeds current data into the sliding window and refits the model
// ("the model is continuously updated with current data").
func (n *DetectionNode) Update(batch *tensor.Tensor) error {
	if n.WindowSize <= 0 {
		n.WindowSize = 8
	}
	n.window = append(n.window, batch.Clone())
	if len(n.window) > n.WindowSize {
		n.window = n.window[len(n.window)-n.WindowSize:]
	}
	// Concatenate the window.
	cols := batch.Shape()[1]
	total := 0
	for _, b := range n.window {
		total += b.Shape()[0]
	}
	all := tensor.New(total, cols)
	r := 0
	for _, b := range n.window {
		for i := 0; i < b.Shape()[0]; i++ {
			for j := 0; j < cols; j++ {
				all.Set(b.At(i, j), r, j)
			}
			r++
		}
	}
	return n.Detector.Fit(all)
}

// DataConfig is the "simple configuration file" of §VII for loading special
// formats: which columns to use, the delimiter, and header handling.
type DataConfig struct {
	Columns   []int `json:"columns"`   // empty = all columns
	SkipRows  int   `json:"skip_rows"` // header rows to skip
	Delimiter rune  `json:"-"`
}

// LoadCSV reads numeric CSV data under the config into a sample matrix.
func LoadCSV(r io.Reader, cfg DataConfig) (*tensor.Tensor, error) {
	cr := csv.NewReader(r)
	if cfg.Delimiter != 0 {
		cr.Comma = cfg.Delimiter
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("anomaly: csv: %w", err)
	}
	if cfg.SkipRows > 0 {
		if cfg.SkipRows >= len(records) {
			return nil, fmt.Errorf("anomaly: csv has only %d rows", len(records))
		}
		records = records[cfg.SkipRows:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("anomaly: empty csv")
	}
	cols := cfg.Columns
	if len(cols) == 0 {
		for j := range records[0] {
			cols = append(cols, j)
		}
	}
	out := tensor.New(len(records), len(cols))
	for i, rec := range records {
		for jj, j := range cols {
			if j < 0 || j >= len(rec) {
				return nil, fmt.Errorf("anomaly: row %d has no column %d", i, j)
			}
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("anomaly: row %d col %d: %w", i, j, err)
			}
			out.Set(v, i, jj)
		}
	}
	return out, nil
}
