// Package virt models the EVEREST virtualized runtime environment (paper
// §VI-B, Fig. 6): QEMU-KVM hypervisors with a libvirtd-like control API,
// SR-IOV physical/virtual functions exposing FPGA accelerators to VMs, and
// the dynamic VF plug/unplug mechanism EVEREST adds to work around SR-IOV's
// static nature.
//
// The performance model captures the paper's claims: VF passthrough is
// near-native (a few percent overhead), software I/O virtualization
// (virtio-style) is markedly slower but more flexible, and plug/unplug has a
// hot-plug latency cost.
package virt

import (
	"fmt"
	"sort"
	"sync"

	"everest/internal/platform"
)

// IOPath selects how a VM reaches the accelerator.
type IOPath int

// I/O paths.
const (
	// Native is host (non-virtualized) access: the baseline.
	Native IOPath = iota
	// VFPassthrough is SR-IOV virtual function passthrough.
	VFPassthrough
	// VirtIO is the software-emulated path.
	VirtIO
)

func (p IOPath) String() string {
	switch p {
	case VFPassthrough:
		return "vf-passthrough"
	case VirtIO:
		return "virtio"
	default:
		return "native"
	}
}

// Overhead returns the multiplicative execution-time overhead of the path.
func (p IOPath) Overhead() float64 {
	switch p {
	case VFPassthrough:
		return 1.03 // near-native (paper: "near-native performance")
	case VirtIO:
		return 1.35
	default:
		return 1.0
	}
}

// HotplugSeconds is the modelled latency of one VF plug or unplug.
const HotplugSeconds = 0.050

// VF is one SR-IOV virtual function of a device.
type VF struct {
	ID       int
	Device   int    // device index on the node
	Assigned string // VM name, or "" if free
}

// PF is the physical function: the management interface of one device.
type PF struct {
	Device int
	MaxVFs int
	VFs    []*VF
}

// FreeVFs returns the unassigned VFs.
func (p *PF) FreeVFs() []*VF {
	var out []*VF
	for _, vf := range p.VFs {
		if vf.Assigned == "" {
			out = append(out, vf)
		}
	}
	return out
}

// VM is a guest machine.
type VM struct {
	Name  string
	VCPUs int
	vfs   map[int]*VF // keyed by VF ID
}

// VFCount returns how many VFs the VM holds.
func (v *VM) VFCount() int { return len(v.vfs) }

// HotplugKind classifies hot-plug notifications.
type HotplugKind int

// Hot-plug notification kinds.
const (
	// VFPlugged fires when a VF is assigned to a VM.
	VFPlugged HotplugKind = iota
	// VFUnplugged fires when a VF is removed from a VM.
	VFUnplugged
)

func (k HotplugKind) String() string {
	if k == VFUnplugged {
		return "vf-unplugged"
	}
	return "vf-plugged"
}

// HotplugEvent is one VF plug/unplug notification. AssignedVFs reports how
// many VFs of the device remain assigned to any VM after the operation —
// zero on an unplug means the accelerator just became unreachable from
// every guest, which is what the resource manager's adaptation loop keys
// on.
type HotplugEvent struct {
	Kind        HotplugKind
	Node        string
	VM          string
	Device      int
	FreeVFs     int // free VFs left in the device's SR-IOV pool
	AssignedVFs int // VFs of the device still assigned to some VM
}

// Hypervisor is the per-node virtualization stack: QEMU-KVM plus the
// libvirtd agent exposing the control API to the resource manager and the
// autotuner.
type Hypervisor struct {
	Node *platform.Node

	mu        sync.Mutex
	pfs       []*PF
	vms       map[string]*VM
	plugOps   int // statistics: number of plug/unplug operations
	subs      []func(HotplugEvent)
	pending   []HotplugEvent // events enqueued under mu, delivered in order
	notifying bool           // one goroutine drains pending at a time
}

// NewHypervisor creates a hypervisor over a node, exposing maxVFs virtual
// functions per attached device (SR-IOV's statically-defined VF pool).
func NewHypervisor(node *platform.Node, maxVFs int) (*Hypervisor, error) {
	if maxVFs < 1 {
		return nil, fmt.Errorf("virt: need at least one VF per device")
	}
	h := &Hypervisor{Node: node, vms: make(map[string]*VM)}
	id := 0
	for d := range node.Devices {
		pf := &PF{Device: d, MaxVFs: maxVFs}
		for i := 0; i < maxVFs; i++ {
			pf.VFs = append(pf.VFs, &VF{ID: id, Device: d})
			id++
		}
		h.pfs = append(h.pfs, pf)
	}
	return h, nil
}

// Subscribe registers a hot-plug listener (the libvirtd event stream the
// resource manager attaches to). Events are delivered in mutation order,
// outside the hypervisor lock, so callbacks may call back into the
// hypervisor or the engine. Delivery happens on whichever plug/unplug
// goroutine holds the drain at the time: with concurrent pluggers, a
// PlugVF/UnplugVF call can return before its own event has been delivered
// (another goroutine delivers it, still in order).
func (h *Hypervisor) Subscribe(fn func(HotplugEvent)) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, fn)
}

// drain delivers pending notifications in enqueue order. Events are
// appended to h.pending under the same lock that mutates VF state, so
// delivery order always matches mutation order even when several
// goroutines plug and unplug concurrently; a single drainer at a time
// guarantees no two callbacks interleave out of order. Callbacks run
// without the lock held, so they may call back into the hypervisor — a
// nested plug/unplug enqueues its event and returns, and the outer drain
// delivers it.
func (h *Hypervisor) drain() {
	h.mu.Lock()
	if h.notifying {
		h.mu.Unlock()
		return
	}
	h.notifying = true
	for len(h.pending) > 0 {
		ev := h.pending[0]
		h.pending = h.pending[1:]
		subs := append(make([]func(HotplugEvent), 0, len(h.subs)), h.subs...)
		h.mu.Unlock()
		for _, fn := range subs {
			fn(ev)
		}
		h.mu.Lock()
	}
	h.notifying = false
	h.mu.Unlock()
}

// deviceVFState counts the device's free and assigned VFs. Callers hold
// h.mu.
func (h *Hypervisor) deviceVFState(device int) (free, assigned int) {
	if device < 0 || device >= len(h.pfs) {
		return 0, 0
	}
	for _, vf := range h.pfs[device].VFs {
		if vf.Assigned == "" {
			free++
		} else {
			assigned++
		}
	}
	return free, assigned
}

// DefineVM creates a guest (virsh define + start analogue).
func (h *Hypervisor) DefineVM(name string, vcpus int) (*VM, error) {
	if name == "" || vcpus < 1 {
		return nil, fmt.Errorf("virt: VM needs a name and at least one vcpu")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.vms[name]; dup {
		return nil, fmt.Errorf("virt: VM %q already defined", name)
	}
	vm := &VM{Name: name, VCPUs: vcpus, vfs: make(map[int]*VF)}
	h.vms[name] = vm
	return vm, nil
}

// DestroyVM removes a guest, releasing its VFs (one unplug notification
// per released VF).
func (h *Hypervisor) DestroyVM(name string) error {
	h.mu.Lock()
	vm, ok := h.vms[name]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("virt: no VM %q", name)
	}
	ids := make([]int, 0, len(vm.vfs))
	for id := range vm.vfs {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic release (and notification) order
	for _, id := range ids {
		vf := vm.vfs[id]
		vf.Assigned = ""
		h.plugOps++
		free, assigned := h.deviceVFState(vf.Device)
		h.pending = append(h.pending, HotplugEvent{
			Kind: VFUnplugged, Node: h.Node.Name, VM: name, Device: vf.Device,
			FreeVFs: free, AssignedVFs: assigned,
		})
	}
	delete(h.vms, name)
	h.mu.Unlock()
	h.drain()
	return nil
}

// PlugVF assigns a free VF of the device to the VM (the dynamic plugging
// mechanism of §VI-B). Returns the modelled hot-plug time.
func (h *Hypervisor) PlugVF(vmName string, device int) (float64, error) {
	h.mu.Lock()
	vm, ok := h.vms[vmName]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("virt: no VM %q", vmName)
	}
	if device < 0 || device >= len(h.pfs) {
		h.mu.Unlock()
		return 0, fmt.Errorf("virt: no device %d", device)
	}
	for _, vf := range h.pfs[device].VFs {
		if vf.Assigned == "" {
			vf.Assigned = vmName
			vm.vfs[vf.ID] = vf
			h.plugOps++
			free, assigned := h.deviceVFState(device)
			h.pending = append(h.pending, HotplugEvent{
				Kind: VFPlugged, Node: h.Node.Name, VM: vmName, Device: device,
				FreeVFs: free, AssignedVFs: assigned,
			})
			h.mu.Unlock()
			h.drain()
			return HotplugSeconds, nil
		}
	}
	h.mu.Unlock()
	return 0, fmt.Errorf("virt: no free VF on device %d (SR-IOV pool exhausted)", device)
}

// UnplugVF removes one VF of the device from the VM.
func (h *Hypervisor) UnplugVF(vmName string, device int) (float64, error) {
	h.mu.Lock()
	vm, ok := h.vms[vmName]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("virt: no VM %q", vmName)
	}
	for id, vf := range vm.vfs {
		if vf.Device == device {
			vf.Assigned = ""
			delete(vm.vfs, id)
			h.plugOps++
			free, assigned := h.deviceVFState(device)
			h.pending = append(h.pending, HotplugEvent{
				Kind: VFUnplugged, Node: h.Node.Name, VM: vmName, Device: device,
				FreeVFs: free, AssignedVFs: assigned,
			})
			h.mu.Unlock()
			h.drain()
			return HotplugSeconds, nil
		}
	}
	h.mu.Unlock()
	return 0, fmt.Errorf("virt: VM %q holds no VF of device %d", vmName, device)
}

// hasVF reports whether the VM holds a VF of the device.
func (h *Hypervisor) hasVF(vmName string, device int) bool {
	vm, ok := h.vms[vmName]
	if !ok {
		return false
	}
	for _, vf := range vm.vfs {
		if vf.Device == device {
			return true
		}
	}
	return false
}

// RunAccelerated executes the programmed kernel of the device on behalf of
// a VM through the chosen I/O path. VF passthrough requires the VM to hold
// a VF of that device.
func (h *Hypervisor) RunAccelerated(vmName string, device int, wl platform.Workload, path IOPath) (platform.Timeline, error) {
	h.mu.Lock()
	if path == VFPassthrough && !h.hasVF(vmName, device) {
		h.mu.Unlock()
		return platform.Timeline{}, fmt.Errorf("virt: VM %q has no VF for device %d", vmName, device)
	}
	if _, ok := h.vms[vmName]; !ok && path != Native {
		h.mu.Unlock()
		return platform.Timeline{}, fmt.Errorf("virt: no VM %q", vmName)
	}
	h.mu.Unlock()

	tl, err := h.Node.RunKernel(device, wl)
	if err != nil {
		return platform.Timeline{}, err
	}
	ov := path.Overhead()
	tl.TransferIn *= ov
	tl.TransferOut *= ov
	tl.Compute *= 1 // fabric time is unaffected; only I/O pays
	tl.Total = tl.TransferIn + tl.Compute + tl.TransferOut
	return tl, nil
}

// NodeStatus is the libvirt-style query result the resource allocator and
// autotuner consume ("the node ... can respond to queries about available
// resources and the system's current status").
type NodeStatus struct {
	Node        string
	VMs         []VMStatus
	FreeVFs     map[int]int // device -> free VF count
	AssignedVFs map[int]int // device -> VFs currently held by guests
	PlugOps     int
}

// VMStatus summarizes one guest.
type VMStatus struct {
	Name  string
	VCPUs int
	VFs   int
}

// Query returns the current status snapshot.
func (h *Hypervisor) Query() NodeStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := NodeStatus{
		Node: h.Node.Name, FreeVFs: make(map[int]int),
		AssignedVFs: make(map[int]int), PlugOps: h.plugOps,
	}
	names := make([]string, 0, len(h.vms))
	for name := range h.vms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vm := h.vms[name]
		st.VMs = append(st.VMs, VMStatus{Name: vm.Name, VCPUs: vm.VCPUs, VFs: len(vm.vfs)})
	}
	for _, pf := range h.pfs {
		free := len(pf.FreeVFs())
		st.FreeVFs[pf.Device] = free
		st.AssignedVFs[pf.Device] = len(pf.VFs) - free
	}
	return st
}

// Rebalance implements the resource-allocator-driven mechanism of §VI-B:
// given a demand map (VM -> wanted VF count on device 0..n), it unplugs
// surplus VFs and plugs missing ones, returning the total modelled hot-plug
// time. Demand that exceeds the pool is satisfied in sorted VM-name order.
func (h *Hypervisor) Rebalance(demand map[string]map[int]int) (float64, error) {
	total := 0.0
	names := make([]string, 0, len(demand))
	for name := range demand {
		names = append(names, name)
	}
	sort.Strings(names)
	// First release surplus.
	for _, name := range names {
		for dev, want := range demand[name] {
			for h.countVFs(name, dev) > want {
				dt, err := h.UnplugVF(name, dev)
				if err != nil {
					return total, err
				}
				total += dt
			}
		}
	}
	// Then satisfy demand while the pool lasts.
	for _, name := range names {
		devs := make([]int, 0, len(demand[name]))
		for dev := range demand[name] {
			devs = append(devs, dev)
		}
		sort.Ints(devs)
		for _, dev := range devs {
			want := demand[name][dev]
			for h.countVFs(name, dev) < want {
				dt, err := h.PlugVF(name, dev)
				if err != nil {
					// Pool exhausted: partial satisfaction, not an error.
					return total, nil
				}
				total += dt
			}
		}
	}
	return total, nil
}

func (h *Hypervisor) countVFs(vmName string, device int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[vmName]
	if !ok {
		return 0
	}
	n := 0
	for _, vf := range vm.vfs {
		if vf.Device == device {
			n++
		}
	}
	return n
}
