package virt_test

import (
	"sync"
	"testing"

	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/virt"
)

// TestUnplugRacedAgainstDispatch hammers the adaptation loop from both
// ends at once: a stream of FPGA workflows drains through the engine while
// two goroutines plug and unplug the accelerators' VFs through the
// hypervisors. Every workflow must still complete with a full, dependency-
// ordered schedule, and the run must be -race clean. Tasks whose device
// vanished under them either reschedule (adaptive invalidation) or degrade
// to software — both end in a valid schedule.
func TestUnplugRacedAgainstDispatch(t *testing.T) {
	s := sdk.New(sdk.DefaultCluster(3))
	bs := sdk.ScenarioBitstream()
	if err := s.Registry.Put(bs); err != nil {
		t.Fatal(err)
	}
	hyps := make([]*virt.Hypervisor, 2)
	for i := range hyps {
		node := s.Cluster.Nodes[i]
		if _, err := s.Deploy(bs.ID, node.Name); err != nil {
			t.Fatal(err)
		}
		h, err := virt.NewHypervisor(node, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.DefineVM("guest", 4); err != nil {
			t.Fatal(err)
		}
		if _, err := h.PlugVF("guest", 0); err != nil {
			t.Fatal(err)
		}
		hyps[i] = h
	}

	srv := s.NewServer(sdk.ServerConfig{Policy: runtime.PolicyHEFT, Adaptive: true})
	for _, h := range hyps {
		srv.AttachHypervisor(h, nil)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	const workflows = 24
	subs := make([]*sdk.Submission, workflows)
	var wg sync.WaitGroup
	// Two pluggers cycling their hypervisor's VF while dispatch runs. The
	// cycle count is bounded: hot-plug events are rare in the modelled
	// world, and an unthrottled spam loop would only measure how fast the
	// engine's (unbounded, never-blocking) control queue can absorb it.
	for _, h := range hyps {
		wg.Add(1)
		go func(h *virt.Hypervisor) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if _, err := h.UnplugVF("guest", 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.PlugVF("guest", 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(h)
	}
	for i := range subs {
		sub, err := srv.Submit("racer", "", sdk.AdaptiveWorkflow(i, bs.ID))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	for i, sub := range subs {
		sched, err := sub.Wait()
		if err != nil {
			t.Fatalf("workflow %d: %v", i, err)
		}
		if len(sched.Assignments) != 4 {
			t.Fatalf("workflow %d: %d assignments, want 4", i, len(sched.Assignments))
		}
		byTask := sched.ByTask()
		for _, mc := range []string{"mc0", "mc1"} {
			if byTask[mc].Start < byTask["prep"].End-1e-12 {
				t.Errorf("workflow %d: %s starts before prep ends", i, mc)
			}
		}
	}
	wg.Wait()
	stats := srv.Shutdown()
	if stats.Completed != workflows || stats.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", stats.Completed, stats.Failed, workflows)
	}
}

// TestConcurrentUnplugMidTaskReschedules pins the deterministic half of
// the race: FPGA work queued behind a long-running task is invalidated by
// an unplug and must be rescheduled off the dead accelerator rather than
// silently degrading on it.
func TestConcurrentUnplugMidTaskReschedules(t *testing.T) {
	s := sdk.New(sdk.DefaultCluster(2))
	bs := sdk.ScenarioBitstream()
	if err := s.Registry.Put(bs); err != nil {
		t.Fatal(err)
	}
	node := s.Cluster.Nodes[0]
	if _, err := s.Deploy(bs.ID, node.Name); err != nil {
		t.Fatal(err)
	}
	srv := s.NewServer(sdk.ServerConfig{
		Policy: runtime.PolicyHEFT, Adaptive: true,
		// Unplug the only accelerator after the first completion.
		Faults: []sdk.Fault{{Kind: runtime.EnvUnplug, AfterTasks: 1, Node: node.Name}},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := runtime.NewWorkflow()
	prev := ""
	for _, name := range []string{"k0", "k1", "k2", "k3"} {
		spec := runtime.TaskSpec{
			Name: name, Flops: 5e10, InputBytes: 1 << 22, OutputBytes: 1 << 20,
			NeedsFPGA: true, BitstreamID: bs.ID,
		}
		if prev != "" {
			spec.Deps = []string{prev}
		}
		if err := w.Submit(spec); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	sub, err := srv.Submit("t", "chain", w)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sub.Wait()
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	byTask := sched.ByTask()
	if !byTask["k0"].OnFPGA {
		t.Error("k0 must run on the FPGA before the unplug")
	}
	for _, name := range []string{"k1", "k2", "k3"} {
		if byTask[name].OnFPGA {
			t.Errorf("%s ran on the FPGA after its device was unplugged", name)
		}
	}
	if sched.Adapt.Fallbacks != 0 {
		t.Errorf("adaptive chain paid %d fallbacks, want 0 (reschedule instead)", sched.Adapt.Fallbacks)
	}
}
