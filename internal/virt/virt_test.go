package virt

import (
	"sync"
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
)

func testNode(t *testing.T) *platform.Node {
	t.Helper()
	n := platform.NewNode("hv0", platform.XeonModel(), platform.AlveoU55C())
	bs := platform.Bitstream{
		ID: "bs", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1 << 22, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 10000, FF: 10000, DSP: 20, BRAM: 10}, ClockMHz: 300},
		Config: platform.SystemConfig{Replicas: 1, BusWidthBits: 512, Lanes: 1,
			PackedElements: 8, PLMBytes: 1 << 16},
		ElemBits: 64,
	}
	if _, err := n.Program(0, bs); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestHypervisorSetup(t *testing.T) {
	if _, err := NewHypervisor(testNode(t), 0); err == nil {
		t.Error("zero VFs must fail")
	}
	h, err := NewHypervisor(testNode(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Query()
	if st.FreeVFs[0] != 4 {
		t.Errorf("free VFs = %d, want 4", st.FreeVFs[0])
	}
}

func TestVMLifecycle(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("", 1); err == nil {
		t.Error("unnamed VM must fail")
	}
	vm, err := h.DefineVM("guest1", 4)
	if err != nil || vm.Name != "guest1" {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("guest1", 2); err == nil {
		t.Error("duplicate VM must fail")
	}
	if err := h.DestroyVM("guest1"); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("guest1"); err == nil {
		t.Error("double destroy must fail")
	}
}

func TestPlugUnplug(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("g1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("g2", 2); err != nil {
		t.Fatal(err)
	}
	dt, err := h.PlugVF("g1", 0)
	if err != nil || dt != HotplugSeconds {
		t.Fatalf("PlugVF: %v (%g)", err, dt)
	}
	if _, err := h.PlugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	// Pool of 2 exhausted.
	if _, err := h.PlugVF("g2", 0); err == nil {
		t.Error("exhausted VF pool must fail (SR-IOV static nature)")
	}
	// Unplug frees one for g2: the dynamic mechanism of §VI-B.
	if _, err := h.UnplugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("g2", 0); err != nil {
		t.Errorf("freed VF must be pluggable: %v", err)
	}
	st := h.Query()
	if st.PlugOps != 4 {
		t.Errorf("plug ops = %d, want 4", st.PlugOps)
	}
	if _, err := h.UnplugVF("g2", 5); err == nil {
		t.Error("unplug of unheld device must fail")
	}
	if _, err := h.PlugVF("ghost", 0); err == nil {
		t.Error("plug into unknown VM must fail")
	}
}

func TestIOPathOverheads(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("g1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	wl := platform.Workload{BytesIn: 1 << 26, BytesOut: 1 << 24}

	native, err := h.RunAccelerated("g1", 0, wl, Native)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := h.RunAccelerated("g1", 0, wl, VFPassthrough)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := h.RunAccelerated("g1", 0, wl, VirtIO)
	if err != nil {
		t.Fatal(err)
	}
	if vf.Total <= native.Total {
		t.Error("VF passthrough must cost a little over native")
	}
	// Near-native: within 5% on the total (I/O-dominated workload).
	if vf.Total > native.Total*1.05 {
		t.Errorf("VF passthrough overhead too high: %g vs %g", vf.Total, native.Total)
	}
	if vio.Total <= vf.Total {
		t.Error("virtio path must be slower than VF passthrough")
	}
}

func TestVFRequiredForPassthrough(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 1)
	if _, err := h.DefineVM("g1", 1); err != nil {
		t.Fatal(err)
	}
	wl := platform.Workload{BytesIn: 1 << 20}
	if _, err := h.RunAccelerated("g1", 0, wl, VFPassthrough); err == nil {
		t.Error("passthrough without a VF must fail")
	}
	if _, err := h.RunAccelerated("g1", 0, wl, VirtIO); err != nil {
		t.Errorf("virtio path needs no VF: %v", err)
	}
}

func TestRebalance(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 4)
	if _, err := h.DefineVM("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("b", 1); err != nil {
		t.Fatal(err)
	}
	dt, err := h.Rebalance(map[string]map[int]int{
		"a": {0: 3},
		"b": {0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Error("rebalance must take hot-plug time")
	}
	st := h.Query()
	if st.VMs[0].VFs != 3 || st.VMs[1].VFs != 1 {
		t.Errorf("rebalance result wrong: %+v", st.VMs)
	}
	// Shift demand: a shrinks, b grows.
	if _, err := h.Rebalance(map[string]map[int]int{
		"a": {0: 1},
		"b": {0: 3},
	}); err != nil {
		t.Fatal(err)
	}
	st = h.Query()
	if st.VMs[0].VFs != 1 || st.VMs[1].VFs != 3 {
		t.Errorf("second rebalance wrong: %+v", st.VMs)
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := h.DefineVM(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Query()
	if st.VMs[0].Name != "alpha" || st.VMs[2].Name != "zeta" {
		t.Errorf("VM order must be sorted: %+v", st.VMs)
	}
}

func TestHotplugEvents(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	var events []HotplugEvent
	h.Subscribe(func(ev HotplugEvent) { events = append(events, ev) })
	h.Subscribe(nil) // ignored

	if _, err := h.DefineVM("guest1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("guest1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("guest1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.UnplugVF("guest1", 0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	first := events[0]
	if first.Kind != VFPlugged || first.Node != "hv0" || first.VM != "guest1" ||
		first.Device != 0 || first.FreeVFs != 1 || first.AssignedVFs != 1 {
		t.Errorf("first event: %+v", first)
	}
	last := events[2]
	if last.Kind != VFUnplugged || last.FreeVFs != 1 || last.AssignedVFs != 1 {
		t.Errorf("unplug event: %+v", last)
	}
	if last.Kind.String() != "vf-unplugged" || first.Kind.String() != "vf-plugged" {
		t.Errorf("kind strings: %v %v", last.Kind, first.Kind)
	}

	// Destroying the VM releases the remaining VF: the AssignedVFs count
	// dropping to zero is the signal the resource manager keys on.
	events = nil
	if err := h.DestroyVM("guest1"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != VFUnplugged || events[0].AssignedVFs != 0 {
		t.Fatalf("destroy events: %+v", events)
	}
	// A subscriber may call back into the hypervisor without deadlocking.
	h.Subscribe(func(ev HotplugEvent) { h.Query() })
	if _, err := h.DefineVM("guest2", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("guest2", 0); err != nil {
		t.Fatal(err)
	}
}

// TestHotplugOrderingNestedCallback pins delivery order: a subscriber that
// mutates VF state from inside a callback sees its event delivered after
// the one in flight, in mutation order.
func TestHotplugOrderingNestedCallback(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("guest", 2); err != nil {
		t.Fatal(err)
	}
	var order []HotplugKind
	nested := false
	h.Subscribe(func(ev HotplugEvent) {
		order = append(order, ev.Kind)
		if !nested {
			nested = true
			if _, err := h.PlugVF("guest", 0); err != nil {
				t.Error(err)
			}
		}
	})
	if _, err := h.UnplugVF("guest", 0); err == nil {
		t.Fatal("unplug with no VF must fail before any event")
	}
	if _, err := h.PlugVF("guest", 0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != VFPlugged || order[1] != VFPlugged {
		t.Fatalf("delivery order: %v, want [vf-plugged vf-plugged]", order)
	}
}

// TestHotplugOrderingConcurrent races two VMs plugging and unplugging VFs
// of the same device: because events are enqueued under the state lock and
// drained in order, the last delivered AssignedVFs count must match the
// device's final state.
func TestHotplugOrderingConcurrent(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 4)
	for _, vm := range []string{"vm-a", "vm-b"} {
		if _, err := h.DefineVM(vm, 1); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	last := -1
	h.Subscribe(func(ev HotplugEvent) {
		mu.Lock()
		last = ev.AssignedVFs
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for _, vm := range []string{"vm-a", "vm-b"} {
		wg.Add(1)
		go func(vm string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := h.PlugVF(vm, 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.UnplugVF(vm, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(vm)
	}
	wg.Wait()
	st := h.Query()
	mu.Lock()
	defer mu.Unlock()
	if want := 4 - st.FreeVFs[0]; last != want {
		t.Fatalf("last delivered AssignedVFs = %d, want %d (final state)", last, want)
	}
}
