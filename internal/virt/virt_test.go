package virt

import (
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
)

func testNode(t *testing.T) *platform.Node {
	t.Helper()
	n := platform.NewNode("hv0", platform.XeonModel(), platform.AlveoU55C())
	bs := platform.Bitstream{
		ID: "bs", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1 << 22, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 10000, FF: 10000, DSP: 20, BRAM: 10}, ClockMHz: 300},
		Config: platform.SystemConfig{Replicas: 1, BusWidthBits: 512, Lanes: 1,
			PackedElements: 8, PLMBytes: 1 << 16},
		ElemBits: 64,
	}
	if _, err := n.Program(0, bs); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestHypervisorSetup(t *testing.T) {
	if _, err := NewHypervisor(testNode(t), 0); err == nil {
		t.Error("zero VFs must fail")
	}
	h, err := NewHypervisor(testNode(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Query()
	if st.FreeVFs[0] != 4 {
		t.Errorf("free VFs = %d, want 4", st.FreeVFs[0])
	}
}

func TestVMLifecycle(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("", 1); err == nil {
		t.Error("unnamed VM must fail")
	}
	vm, err := h.DefineVM("guest1", 4)
	if err != nil || vm.Name != "guest1" {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("guest1", 2); err == nil {
		t.Error("duplicate VM must fail")
	}
	if err := h.DestroyVM("guest1"); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM("guest1"); err == nil {
		t.Error("double destroy must fail")
	}
}

func TestPlugUnplug(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("g1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("g2", 2); err != nil {
		t.Fatal(err)
	}
	dt, err := h.PlugVF("g1", 0)
	if err != nil || dt != HotplugSeconds {
		t.Fatalf("PlugVF: %v (%g)", err, dt)
	}
	if _, err := h.PlugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	// Pool of 2 exhausted.
	if _, err := h.PlugVF("g2", 0); err == nil {
		t.Error("exhausted VF pool must fail (SR-IOV static nature)")
	}
	// Unplug frees one for g2: the dynamic mechanism of §VI-B.
	if _, err := h.UnplugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("g2", 0); err != nil {
		t.Errorf("freed VF must be pluggable: %v", err)
	}
	st := h.Query()
	if st.PlugOps != 4 {
		t.Errorf("plug ops = %d, want 4", st.PlugOps)
	}
	if _, err := h.UnplugVF("g2", 5); err == nil {
		t.Error("unplug of unheld device must fail")
	}
	if _, err := h.PlugVF("ghost", 0); err == nil {
		t.Error("plug into unknown VM must fail")
	}
}

func TestIOPathOverheads(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	if _, err := h.DefineVM("g1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlugVF("g1", 0); err != nil {
		t.Fatal(err)
	}
	wl := platform.Workload{BytesIn: 1 << 26, BytesOut: 1 << 24}

	native, err := h.RunAccelerated("g1", 0, wl, Native)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := h.RunAccelerated("g1", 0, wl, VFPassthrough)
	if err != nil {
		t.Fatal(err)
	}
	vio, err := h.RunAccelerated("g1", 0, wl, VirtIO)
	if err != nil {
		t.Fatal(err)
	}
	if vf.Total <= native.Total {
		t.Error("VF passthrough must cost a little over native")
	}
	// Near-native: within 5% on the total (I/O-dominated workload).
	if vf.Total > native.Total*1.05 {
		t.Errorf("VF passthrough overhead too high: %g vs %g", vf.Total, native.Total)
	}
	if vio.Total <= vf.Total {
		t.Error("virtio path must be slower than VF passthrough")
	}
}

func TestVFRequiredForPassthrough(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 1)
	if _, err := h.DefineVM("g1", 1); err != nil {
		t.Fatal(err)
	}
	wl := platform.Workload{BytesIn: 1 << 20}
	if _, err := h.RunAccelerated("g1", 0, wl, VFPassthrough); err == nil {
		t.Error("passthrough without a VF must fail")
	}
	if _, err := h.RunAccelerated("g1", 0, wl, VirtIO); err != nil {
		t.Errorf("virtio path needs no VF: %v", err)
	}
}

func TestRebalance(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 4)
	if _, err := h.DefineVM("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DefineVM("b", 1); err != nil {
		t.Fatal(err)
	}
	dt, err := h.Rebalance(map[string]map[int]int{
		"a": {0: 3},
		"b": {0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Error("rebalance must take hot-plug time")
	}
	st := h.Query()
	if st.VMs[0].VFs != 3 || st.VMs[1].VFs != 1 {
		t.Errorf("rebalance result wrong: %+v", st.VMs)
	}
	// Shift demand: a shrinks, b grows.
	if _, err := h.Rebalance(map[string]map[int]int{
		"a": {0: 1},
		"b": {0: 3},
	}); err != nil {
		t.Fatal(err)
	}
	st = h.Query()
	if st.VMs[0].VFs != 1 || st.VMs[1].VFs != 3 {
		t.Errorf("second rebalance wrong: %+v", st.VMs)
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	h, _ := NewHypervisor(testNode(t), 2)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := h.DefineVM(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Query()
	if st.VMs[0].Name != "alpha" || st.VMs[2].Name != "zeta" {
		t.Errorf("VM order must be sorted: %+v", st.VMs)
	}
}
