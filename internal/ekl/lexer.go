// Package ekl implements the EVEREST Kernel Language (paper §V-A1, Fig. 3):
// a tensor kernel language with a general syntax for Einstein notation.
//
// The language was designed around the RRTMG radiation module of WRF and
// supports the four extensions the paper calls out over prior tensor DSLs:
//
//   - in-place construction: statements assign into named tensors, may use
//     explicit left-hand-side subscripts, and may accumulate with "+=";
//   - broadcasting: an index variable missing from an operand simply
//     broadcasts that operand along it;
//   - index re-association: subscripts are affine expressions of index
//     variables and integer tensors ("k_major[kT+dT, p+dp, ...]");
//   - subscripted subscripts: integer tensors may appear inside subscripts
//     ("f_major[i_flav[x], x, ...]"), i.e. gathers.
//
// A kernel is declared as
//
//	kernel tau_major {
//	  input  p        : [X]
//	  input  k_major  : [T, P, E, G]
//	  input  i_flav   : [X] index
//	  param  strato = 9600.0
//	  iparam bnd
//	  i_strato = select(p[x] <= strato, 1, 0)
//	  tau = sum(dT) r[x, dT] * k_major[jT[x]+dT, jp[x], je[x], g]
//	  output tau[x, g]
//	}
//
// Reduction is explicit ("sum(i, j) body"), matching the ΣΣΣ of Fig. 3.
// Everything else follows Einstein convention: left-hand-side free indices
// define the iteration space.
package ekl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokKeyword // kernel input output param iparam index sum select
	TokPunct   // ( ) [ ] { } , :
	TokOp      // = += + - * / <= < >= > == !=
)

var keywords = map[string]bool{
	"kernel": true, "input": true, "output": true, "param": true,
	"iparam": true, "index": true, "sum": true, "select": true,
}

// Token is a lexical token with position information for diagnostics.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string { return fmt.Sprintf("%q@%d:%d", t.Text, t.Line, t.Col) }

// Lexer turns EKL source into tokens. '#' starts a line comment.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the whole input, ending with a TokEOF token.
func (l *Lexer) Lex() ([]Token, error) {
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) next() (Token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		r := l.peek()
		if r == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}

	startLine, startCol := l.line, l.col
	r := l.peek()

	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				b.WriteRune(l.advance())
			} else {
				break
			}
		}
		text := b.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: startLine, Col: startCol}, nil

	case unicode.IsDigit(r) || (r == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		var b strings.Builder
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			c := l.peek()
			switch {
			case unicode.IsDigit(c):
				b.WriteRune(l.advance())
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				b.WriteRune(l.advance())
			case (c == 'e' || c == 'E') && !seenExp && b.Len() > 0:
				seenExp = true
				b.WriteRune(l.advance())
				if l.peek() == '+' || l.peek() == '-' {
					b.WriteRune(l.advance())
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		text := b.String()
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return Token{}, fmt.Errorf("ekl:%d:%d: bad number %q", startLine, startCol, text)
		}
		return Token{Kind: TokNumber, Text: text, Line: startLine, Col: startCol}, nil

	case strings.ContainsRune("()[]{},:", r):
		l.advance()
		return Token{Kind: TokPunct, Text: string(r), Line: startLine, Col: startCol}, nil

	case strings.ContainsRune("=+-*/<>!", r):
		l.advance()
		text := string(r)
		if l.pos < len(l.src) && l.peek() == '=' {
			// two-char operators: += == <= >= != ; note "--" etc. invalid
			text += string(l.advance())
		}
		switch text {
		case "=", "+=", "+", "-", "*", "/", "<=", "<", ">=", ">", "==", "!=":
			return Token{Kind: TokOp, Text: text, Line: startLine, Col: startCol}, nil
		}
		return Token{}, fmt.Errorf("ekl:%d:%d: unknown operator %q", startLine, startCol, text)

	default:
		return Token{}, fmt.Errorf("ekl:%d:%d: unexpected character %q", startLine, startCol, r)
	}
}
