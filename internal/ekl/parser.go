package ekl

import (
	"fmt"
	"strconv"
	"unicode"
)

// Parse parses a full EKL source unit.
func Parse(src string) (*Program, error) {
	toks, err := NewLexer(src).Lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		prog.Kernels = append(prog.Kernels, k)
	}
	if len(prog.Kernels) == 0 {
		return nil, fmt.Errorf("ekl: no kernels in source")
	}
	return prog, nil
}

// ParseKernel parses a source unit expected to contain exactly one kernel.
func ParseKernel(src string) (*Kernel, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Kernels) != 1 {
		return nil, fmt.Errorf("ekl: expected exactly one kernel, got %d", len(prog.Kernels))
	}
	return prog.Kernels[0], nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, fmt.Errorf("ekl:%d:%d: expected %q, found %q", t.Line, t.Col, want, t.Text)
}

func (p *parser) parseKernel() (*Kernel, error) {
	kw, err := p.expect(TokKeyword, "kernel")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	k := &Kernel{Name: name.Text, Line: kw.Line}
	for !p.accept(TokPunct, "}") {
		switch {
		case p.at(TokKeyword, "input"):
			d, err := p.parseInput()
			if err != nil {
				return nil, err
			}
			k.Inputs = append(k.Inputs, d)
		case p.at(TokKeyword, "param"), p.at(TokKeyword, "iparam"):
			d, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			k.Params = append(k.Params, d)
		case p.at(TokKeyword, "output"):
			d, err := p.parseOutput()
			if err != nil {
				return nil, err
			}
			k.Outputs = append(k.Outputs, d)
		case p.at(TokIdent, ""):
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			k.Stmts = append(k.Stmts, s)
		case p.at(TokEOF, ""):
			return nil, fmt.Errorf("ekl: unexpected end of input inside kernel %q", k.Name)
		default:
			t := p.cur()
			return nil, fmt.Errorf("ekl:%d:%d: unexpected token %q in kernel body", t.Line, t.Col, t.Text)
		}
	}
	if len(k.Outputs) == 0 {
		return nil, fmt.Errorf("ekl: kernel %q declares no outputs", k.Name)
	}
	return k, nil
}

func (p *parser) parseInput() (*TensorDecl, error) {
	kw := p.next() // input
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "["); err != nil {
		return nil, err
	}
	d := &TensorDecl{Name: name.Text, Line: kw.Line}
	for {
		t := p.cur()
		switch t.Kind {
		case TokNumber:
			p.next()
			n, err := strconv.Atoi(t.Text)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("ekl:%d:%d: dimension must be a positive integer, got %q", t.Line, t.Col, t.Text)
			}
			d.Dims = append(d.Dims, Dim{Size: n})
		case TokIdent:
			p.next()
			if !isSymbolicDim(t.Text) {
				return nil, fmt.Errorf("ekl:%d:%d: symbolic dimension %q must start with an uppercase letter", t.Line, t.Col, t.Text)
			}
			d.Dims = append(d.Dims, Dim{Sym: t.Text})
		default:
			return nil, fmt.Errorf("ekl:%d:%d: expected dimension, found %q", t.Line, t.Col, t.Text)
		}
		if p.accept(TokPunct, ",") {
			continue
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		break
	}
	if p.accept(TokKeyword, "index") {
		d.IsIndex = true
	}
	return d, nil
}

func isSymbolicDim(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

func (p *parser) parseParam() (*ParamDecl, error) {
	kw := p.next() // param or iparam
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &ParamDecl{Name: name.Text, IsInt: kw.Text == "iparam", Line: kw.Line}
	if p.accept(TokOp, "=") {
		neg := p.accept(TokOp, "-")
		num, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		v, _ := strconv.ParseFloat(num.Text, 64)
		if neg {
			v = -v
		}
		d.Default = v
		d.HasDef = true
	}
	return d, nil
}

func (p *parser) parseOutput() (*OutputDecl, error) {
	kw := p.next() // output
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &OutputDecl{Name: name.Text, Line: kw.Line}
	if p.accept(TokPunct, "[") {
		for {
			ix, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			d.Indices = append(d.Indices, ix.Text)
			if p.accept(TokPunct, ",") {
				continue
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			break
		}
	}
	return d, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	name := p.next() // ident
	s := &Stmt{Name: name.Text, Line: name.Line}
	if p.accept(TokPunct, "[") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.LHS = append(s.LHS, e)
			if p.accept(TokPunct, ",") {
				continue
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			break
		}
	}
	switch {
	case p.accept(TokOp, "="):
	case p.accept(TokOp, "+="):
		s.Accumulate = true
	default:
		t := p.cur()
		return nil, fmt.Errorf("ekl:%d:%d: expected = or += after %q", t.Line, t.Col, s.Name)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.RHS = rhs
	return s, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := cmp
//	cmp     := add (("<="|"<"|">="|">"|"=="|"!=") add)?
//	add     := mul (("+"|"-") mul)*
//	mul     := unary (("*"|"/") unary)*
//	unary   := "-" unary | "sum" "(" ids ")" mul | postfix
//	postfix := primary ("[" expr {"," expr} "]")*
//	primary := NUMBER | IDENT | call | "(" expr ")" | "[" expr "," expr "]"
func (p *parser) parseExpr() (Expr, error) { return p.parseCmp() }

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", "<", ">=", ">", "==", "!="} {
		if p.accept(TokOp, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "+"):
			op = "+"
		case p.accept(TokOp, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "*"):
			op = "*"
		case p.accept(TokOp, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", X: x}, nil
	}
	if p.at(TokKeyword, "sum") {
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var ids []string
		for {
			id, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			ids = append(ids, id.Text)
			if p.accept(TokPunct, ",") {
				continue
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		// The sum body binds at multiplicative precedence, so
		// "sum(i) a[i]*b[i] + c" sums the product then adds c.
		body, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		return SumExpr{Indices: ids, Body: body}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(TokPunct, "[") {
		sub := SubscriptExpr{Base: e}
		for {
			ix, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sub.Indices = append(sub.Indices, ix)
			if p.accept(TokPunct, ",") {
				continue
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			break
		}
		e = sub
	}
	return e, nil
}

var builtinFns = map[string]int{
	"exp": 1, "log": 1, "sqrt": 1, "abs": 1, "floor": 1,
	"min": 2, "max": 2, "pow": 2,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, _ := strconv.ParseFloat(t.Text, 64)
		return NumberLit{Value: v}, nil

	case t.Kind == TokKeyword && t.Text == "select":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var args []Expr
		for i := 0; i < 3; i++ {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if i < 2 {
				if _, err := p.expect(TokPunct, ","); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return CallExpr{Fn: "select", Args: args}, nil

	case t.Kind == TokIdent:
		p.next()
		if arity, ok := builtinFns[t.Text]; ok && p.at(TokPunct, "(") {
			p.next()
			var args []Expr
			for i := 0; i < arity; i++ {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if i < arity-1 {
					if _, err := p.expect(TokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return CallExpr{Fn: t.Text, Args: args}, nil
		}
		return IdentRef{Name: t.Text}, nil

	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokPunct && t.Text == "[":
		p.next()
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		return PairExpr{A: a, B: b}, nil

	default:
		return nil, fmt.Errorf("ekl:%d:%d: unexpected token %q in expression", t.Line, t.Col, t.Text)
	}
}
