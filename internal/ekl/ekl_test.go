package ekl

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"everest/internal/mlir"
	"everest/internal/tensor"
)

func mustParse(t *testing.T, src string) *Kernel {
	t.Helper()
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return k
}

func run(t *testing.T, src string, b Binding) *Result {
	t.Helper()
	k := mustParse(t, src)
	res, err := k.Run(b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLexerBasics(t *testing.T) {
	toks, err := NewLexer("kernel k { a = b[i] + 1.5e-3 # comment\n }").Lex()
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := []string{"kernel", "k", "{", "a", "=", "b", "[", "i", "]", "+", "1.5e-3", "}", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerRejectsBadChar(t *testing.T) {
	if _, err := NewLexer("a = b $ c").Lex(); err == nil {
		t.Error("lexer must reject '$'")
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := NewLexer("<= >= == != += = < >").Lex()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "==", "!=", "+=", "=", "<", ">"}
	for i, w := range want {
		if toks[i].Text != w || toks[i].Kind != TokOp {
			t.Errorf("token %d = %v, want op %q", i, toks[i], w)
		}
	}
}

const axpySrc = `
kernel axpy {
  input x : [N]
  input y : [N]
  param alpha = 2.0
  out = alpha * x[i] + y[i]
  output out[i]
}
`

func TestAxpy(t *testing.T) {
	x := tensor.FromData([]float64{1, 2, 3}, 3)
	y := tensor.FromData([]float64{10, 20, 30}, 3)
	res := run(t, axpySrc, Binding{Tensors: map[string]*tensor.Tensor{"x": x, "y": y}})
	out := res.Outputs["out"]
	want := []float64{12, 24, 36}
	for i, w := range want {
		if out.At(i) != w {
			t.Fatalf("out = %v, want %v", out.Data(), want)
		}
	}
	if res.Dims["N"] != 3 {
		t.Errorf("symbolic dim N = %d, want 3", res.Dims["N"])
	}
}

func TestParamDefaultAndOverride(t *testing.T) {
	x := tensor.FromData([]float64{1}, 1)
	y := tensor.FromData([]float64{0}, 1)
	bind := Binding{Tensors: map[string]*tensor.Tensor{"x": x, "y": y},
		Scalars: map[string]float64{"alpha": 5}}
	res := run(t, axpySrc, bind)
	if res.Outputs["out"].At(0) != 5 {
		t.Errorf("alpha override failed: %v", res.Outputs["out"].Data())
	}
}

func TestMatMulKernel(t *testing.T) {
	src := `
kernel matmul {
  input a : [M, K]
  input b : [K, N]
  c = sum(k) a[i, k] * b[k, j]
  output c[i, j]
}
`
	rng := rand.New(rand.NewSource(7))
	a := tensor.Random(rng, -1, 1, 4, 3)
	bm := tensor.Random(rng, -1, 1, 3, 5)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"a": a, "b": bm}})
	want := tensor.MatMul(a, bm)
	if tensor.MaxAbsDiff(res.Outputs["c"], want) > 1e-12 {
		t.Error("EKL matmul disagrees with tensor.MatMul")
	}
}

func TestBroadcasting(t *testing.T) {
	// v has no i index: broadcast along i.
	src := `
kernel bcast {
  input m : [I, J]
  input v : [J]
  out = m[i, j] * v[j]
  output out[i, j]
}
`
	m := tensor.FromData([]float64{1, 2, 3, 4}, 2, 2)
	v := tensor.FromData([]float64{10, 100}, 2)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"m": m, "v": v}})
	if res.Outputs["out"].At(1, 1) != 400 {
		t.Errorf("broadcast result wrong: %v", res.Outputs["out"].Data())
	}
}

func TestSelectAndComparison(t *testing.T) {
	src := `
kernel clip {
  input x : [N]
  param lo = 0.0
  out = select(x[i] < lo, lo, x[i])
  output out[i]
}
`
	x := tensor.FromData([]float64{-2, 3, -0.5, 7}, 4)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"x": x}})
	want := []float64{0, 3, 0, 7}
	for i, w := range want {
		if res.Outputs["out"].At(i) != w {
			t.Fatalf("clip = %v, want %v", res.Outputs["out"].Data(), want)
		}
	}
}

func TestSubscriptedSubscripts(t *testing.T) {
	// Gather: out[i] = table[sel[i]].
	src := `
kernel gather {
  input table : [T]
  input sel : [N] index
  out = table[sel[i]]
  output out[i]
}
`
	table := tensor.FromData([]float64{10, 20, 30}, 3)
	sel := tensor.FromData([]float64{2, 0, 1, 2}, 4)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"table": table, "sel": sel}})
	want := []float64{30, 10, 20, 30}
	for i, w := range want {
		if res.Outputs["out"].At(i) != w {
			t.Fatalf("gather = %v, want %v", res.Outputs["out"].Data(), want)
		}
	}
}

func TestIndexReassociation(t *testing.T) {
	// Stencil with index arithmetic a[i+1] - a[i].
	src := `
kernel diff {
  input a : [N]
  input small : [M]
  d = a[i+1] - a[i]
  output d[i]
}
`
	// Bare subscripts constrain extents, so the stencil accesses use index
	// arithmetic (i+1, i+0) and the iteration domain is bound by w.
	srcOK := `
kernel diff {
  input a : [N]
  input w : [M]
  d = (a[i+1] - a[i+0]) * w[i]
  output d[i]
}
`
	_ = src
	a := tensor.FromData([]float64{1, 4, 9, 16}, 4)
	w := tensor.FromData([]float64{1, 1, 1}, 3)
	res := run(t, srcOK, Binding{Tensors: map[string]*tensor.Tensor{"a": a, "w": w}})
	want := []float64{3, 5, 7}
	for i, v := range want {
		if res.Outputs["d"].At(i) != v {
			t.Fatalf("diff = %v, want %v", res.Outputs["d"].Data(), want)
		}
	}
}

func TestPairConstruction(t *testing.T) {
	// i_T = [j[x], j[x]+1] builds an (X, 2) window tensor.
	src := `
kernel pair {
  input j : [X] index
  input v : [V]
  i_T = [j[x], j[x]+1]
  out = v[i_T[x, t]]
  output out[x, t]
}
`
	j := tensor.FromData([]float64{0, 2}, 2)
	v := tensor.FromData([]float64{5, 6, 7, 8}, 4)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"j": j, "v": v}})
	out := res.Outputs["out"]
	if out.Rank() != 2 || out.Shape()[1] != 2 {
		t.Fatalf("pair result shape %v, want (2,2)", out.Shape())
	}
	if out.At(0, 0) != 5 || out.At(0, 1) != 6 || out.At(1, 0) != 7 || out.At(1, 1) != 8 {
		t.Errorf("pair gather = %v", out.Data())
	}
}

func TestInPlaceAndAccumulate(t *testing.T) {
	src := `
kernel acc {
  input x : [N]
  out[i] = x[i]
  out[i] += x[i]
  output out[i]
}
`
	x := tensor.FromData([]float64{1, 2}, 2)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"x": x}})
	if res.Outputs["out"].At(1) != 4 {
		t.Errorf("accumulate failed: %v", res.Outputs["out"].Data())
	}
}

func TestInPlaceLiteralSubscript(t *testing.T) {
	src := `
kernel inplace {
  input x : [N]
  out[i] = x[i]
  out[0] = 99
  output out[i]
}
`
	x := tensor.FromData([]float64{1, 2, 3}, 3)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"x": x}})
	got := res.Outputs["out"]
	if got.At(0) != 99 || got.At(2) != 3 {
		t.Errorf("in-place literal write failed: %v", got.Data())
	}
}

func TestOutputOrderDeclaration(t *testing.T) {
	src := `
kernel order {
  input m : [I, J]
  out = m[i, j]
  output out[j, i]
}
`
	m := tensor.FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"m": m}})
	out := res.Outputs["out"]
	if out.Shape()[0] != 3 || out.Shape()[1] != 2 {
		t.Fatalf("output order shape %v, want [3 2]", out.Shape())
	}
	if out.At(2, 1) != m.At(1, 2) {
		t.Error("output reordering produced wrong transpose")
	}
}

// rrtmgSrc is the paper's Fig. 3 kernel: the major-absorber optical depth of
// the RRTMG gas-optics scheme, written in EKL.
const rrtmgSrc = `
kernel tau_major {
  input p           : [X]
  input bnd_to_flav : [2, NBND] index
  input j_T         : [X] index
  input j_p         : [X] index
  input j_eta       : [NFLAV, X] index
  input r_mix       : [NFLAV, X, E]
  input f_major     : [NFLAV, X, T, PP, E]
  input k_major     : [NT, NP, NETA, G]
  param strato = 9600.0
  iparam bnd
  i_strato = select(p[x] <= strato, 1, 0)
  i_flav[x] = bnd_to_flav[i_strato[x], bnd]
  tau_abs = sum(t, pp, e) r_mix[i_flav[x], x, e]
          * f_major[i_flav[x], x, t, pp, e]
          * k_major[j_T[x]+t, j_p[x]+i_strato[x]+pp, j_eta[i_flav[x], x]+e, g]
  output tau_abs[x, g]
}
`

// rrtmgBinding builds a random consistent binding for the Fig. 3 kernel.
func rrtmgBinding(seed int64, nx, ng int) Binding {
	rng := rand.New(rand.NewSource(seed))
	const (
		nbnd, nflav     = 4, 3
		nT, nP, nEta    = 6, 8, 5
		extT, extP, ext = 2, 2, 2
	)
	p := tensor.New(nx)
	for i := 0; i < nx; i++ {
		p.Set(rng.Float64()*20000, i)
	}
	intTensor := func(max int, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float64(rng.Intn(max))
		}
		return t
	}
	return Binding{
		Tensors: map[string]*tensor.Tensor{
			"p":           p,
			"bnd_to_flav": intTensor(nflav, 2, nbnd),
			"j_T":         intTensor(nT-extT, nx),
			"j_p":         intTensor(nP-extP-1, nx),
			"j_eta":       intTensor(nEta-ext, nflav, nx),
			"r_mix":       tensor.Random(rng, 0, 1, nflav, nx, ext),
			"f_major":     tensor.Random(rng, 0, 1, nflav, nx, extT, extP, ext),
			"k_major":     tensor.Random(rng, 0, 1, nT, nP, nEta, ng),
		},
		Scalars: map[string]float64{"bnd": 1},
	}
}

// rrtmgReference is the hand-written loop-nest version of the same kernel:
// the "~200 lines of Fortran" shape that Fig. 3 compresses. It is the
// numerical oracle for experiment E1.
func rrtmgReference(b Binding) *tensor.Tensor {
	p := b.Tensors["p"]
	bndToFlav := b.Tensors["bnd_to_flav"]
	jT := b.Tensors["j_T"]
	jp := b.Tensors["j_p"]
	jEta := b.Tensors["j_eta"]
	rMix := b.Tensors["r_mix"]
	fMajor := b.Tensors["f_major"]
	kMajor := b.Tensors["k_major"]
	strato := 9600.0
	bnd := int(b.Scalars["bnd"])

	nx := p.Shape()[0]
	ng := kMajor.Shape()[3]
	extT := fMajor.Shape()[2]
	extP := fMajor.Shape()[3]
	extE := fMajor.Shape()[4]

	out := tensor.New(nx, ng)
	for x := 0; x < nx; x++ {
		iStrato := 0
		if p.At(x) <= strato {
			iStrato = 1
		}
		iFlav := int(bndToFlav.At(iStrato, bnd))
		for g := 0; g < ng; g++ {
			acc := 0.0
			for t := 0; t < extT; t++ {
				for pp := 0; pp < extP; pp++ {
					for e := 0; e < extE; e++ {
						acc += rMix.At(iFlav, x, e) *
							fMajor.At(iFlav, x, t, pp, e) *
							kMajor.At(int(jT.At(x))+t,
								int(jp.At(x))+iStrato+pp,
								int(jEta.At(iFlav, x))+e, g)
					}
				}
			}
			out.Set(acc, x, g)
		}
	}
	return out
}

func TestRRTMGMatchesReference(t *testing.T) {
	k := mustParse(t, rrtmgSrc)
	for seed := int64(1); seed <= 5; seed++ {
		b := rrtmgBinding(seed, 16, 8)
		res, err := k.Run(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := rrtmgReference(b)
		if d := tensor.MaxAbsDiff(res.Outputs["tau_abs"], want); d > 1e-12 {
			t.Fatalf("seed %d: EKL kernel deviates from reference by %g", seed, d)
		}
	}
}

func TestRRTMGCompactness(t *testing.T) {
	// The paper claims the Fig. 3 EKL snippet replaces ~200 lines of
	// Fortran. Our EKL kernel body must stay within the same order of
	// compactness: a handful of statements.
	k := mustParse(t, rrtmgSrc)
	if n := k.SourceLines(); n > 10 {
		t.Errorf("RRTMG kernel has %d statements; expected Fig. 3-like compactness (<=10)", n)
	}
}

func TestRunErrors(t *testing.T) {
	k := mustParse(t, axpySrc)
	// Missing tensor.
	if _, err := k.Run(Binding{}); err == nil {
		t.Error("missing input must error")
	}
	// Wrong rank.
	bad := Binding{Tensors: map[string]*tensor.Tensor{
		"x": tensor.New(2, 2), "y": tensor.New(2, 2)}}
	if _, err := k.Run(bad); err == nil {
		t.Error("rank mismatch must error")
	}
	// Inconsistent symbolic dims.
	bad2 := Binding{Tensors: map[string]*tensor.Tensor{
		"x": tensor.New(2), "y": tensor.New(3)}}
	if _, err := k.Run(bad2); err == nil {
		t.Error("symbolic dim mismatch must error")
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no outputs", `kernel k { input a : [N] b = a[i] }`},
		{"unassigned output", `kernel k { input a : [N] b = a[i] output c }`},
		{"assign to input", `kernel k { input a : [N] a = a[i] output a }`},
		{"redeclared name", `kernel k { input a : [N] input a : [M] b = a[i] output b }`},
	}
	for _, c := range cases {
		k, err := ParseKernel(c.src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if err := k.Check(); err == nil {
			t.Errorf("%s: Check must fail", c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"kernel {",
		"kernel k { input a [N] output a }",
		"kernel k { a = output a }",
		"kernel k { input a : [n] output a }", // lowercase symbolic dim
		"kernel k { input a : [0] output a }",
		"kernel k",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestUnboundIndexError(t *testing.T) {
	src := `
kernel k {
  input a : [N]
  out = a[i] + q
  output out
}
`
	k := mustParse(t, src)
	_, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{"a": tensor.New(2)}})
	if err == nil || !strings.Contains(err.Error(), "extent") {
		t.Errorf("unbound index should fail extent inference, got %v", err)
	}
}

func TestOutOfRangeGather(t *testing.T) {
	src := `
kernel k {
  input a : [N]
  input sel : [M] index
  out = a[sel[i]]
  output out[i]
}
`
	k := mustParse(t, src)
	b := Binding{Tensors: map[string]*tensor.Tensor{
		"a":   tensor.New(2),
		"sel": tensor.FromData([]float64{0, 5}, 2), // 5 out of range
	}}
	if _, err := k.Run(b); err == nil {
		t.Error("out-of-range gather must error")
	}
}

func TestNonIntegerSubscript(t *testing.T) {
	src := `
kernel k {
  input a : [N]
  input w : [N]
  out = a[w[i]]
  output out[i]
}
`
	k := mustParse(t, src)
	b := Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.New(3),
		"w": tensor.FromData([]float64{0.5, 1, 2}, 3),
	}}
	if _, err := k.Run(b); err == nil {
		t.Error("non-integer subscript must error")
	}
}

func TestLowerProducesVerifiedModule(t *testing.T) {
	k := mustParse(t, rrtmgSrc)
	b := rrtmgBinding(1, 8, 4)
	m, res, err := Lower(k, b)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || m == nil {
		t.Fatal("nil results")
	}
	if m.CountOps("ekl.einsum") == 0 {
		t.Error("expected at least one ekl.einsum")
	}
	if m.CountOps("ekl.select") == 0 {
		t.Error("expected ekl.select for the i_strato statement")
	}
	if m.CountOps("ekl.gather") == 0 {
		t.Error("expected ekl.gather for the subscripted subscripts")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("module must verify: %v", err)
	}
}

func TestLoweringPipelineToAffine(t *testing.T) {
	k := mustParse(t, rrtmgSrc)
	b := rrtmgBinding(2, 8, 4)
	m, _, err := Lower(k, b)
	if err != nil {
		t.Fatal(err)
	}
	pm := mlir.NewPassManager().Add(LowerToTeIL(), LowerToAffine())
	if err := pm.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if m.CountOps("teil.load") == 0 {
		t.Error("teil lowering produced no loads")
	}
	if m.CountOps("affine.for") == 0 {
		t.Error("affine lowering produced no loops")
	}
	// The einsum's loop nest must include its reduction dimensions: x, g
	// plus t, pp, e = 5 loops for the tau statement alone.
	if got := m.CountOps("affine.for"); got < 5 {
		t.Errorf("affine.for count = %d, want >= 5", got)
	}
}

func TestLowerToESNThenTeIL(t *testing.T) {
	// Fig. 5's full path: ekl -> esn (normalized contractions) -> teil ->
	// affine, all verifying.
	k := mustParse(t, rrtmgSrc)
	b := rrtmgBinding(4, 8, 4)
	m, _, err := Lower(k, b)
	if err != nil {
		t.Fatal(err)
	}
	pm := mlir.NewPassManager().Add(LowerToESN(), LowerToTeIL(), LowerToAffine())
	if err := pm.Run(m); err != nil {
		t.Fatalf("esn pipeline: %v", err)
	}
	if m.CountOps("ekl.einsum") != 0 {
		t.Error("einsums must be normalized into esn")
	}
	if m.CountOps("esn.contract") == 0 {
		t.Error("esn.contract must appear after normalization")
	}
	if m.CountOps("affine.for") < 5 {
		t.Error("affine loops missing after esn path")
	}
}

func TestEKLDeterminismProperty(t *testing.T) {
	// Property: running the same kernel twice on the same binding yields
	// bit-identical outputs (EKL is deterministic).
	k := mustParse(t, rrtmgSrc)
	f := func(seed int64) bool {
		b := rrtmgBinding(seed, 8, 4)
		r1, err1 := k.Run(b)
		r2, err2 := k.Run(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return tensor.MaxAbsDiff(r1.Outputs["tau_abs"], r2.Outputs["tau_abs"]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSumBodyPrecedence(t *testing.T) {
	// sum binds the multiplicative term only: sum(i) a[i]*b[i] + c = dot+c.
	src := `
kernel dotplus {
  input a : [N]
  input b : [N]
  param c = 10.0
  out = sum(i) a[i] * b[i] + c
  output out
}
`
	a := tensor.FromData([]float64{1, 2}, 2)
	bv := tensor.FromData([]float64{3, 4}, 2)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"a": a, "b": bv}})
	if got := res.Outputs["out"].Item(); got != 21 {
		t.Errorf("sum precedence: got %g, want 21 (= 11 + 10)", got)
	}
}

func TestScalarOutput(t *testing.T) {
	src := `
kernel norm2 {
  input v : [N]
  out = sum(i) v[i] * v[i]
  output out
}
`
	v := tensor.FromData([]float64{3, 4}, 2)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"v": v}})
	if res.Outputs["out"].Rank() != 0 || res.Outputs["out"].Item() != 25 {
		t.Errorf("scalar output = %v", res.Outputs["out"])
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `
kernel fns {
  input x : [N]
  out = max(exp(log(x[i])), sqrt(x[i] * x[i])) + min(pow(x[i], 2), abs(-x[i])) + floor(x[i])
  output out[i]
}
`
	x := tensor.FromData([]float64{1.5}, 1)
	res := run(t, src, Binding{Tensors: map[string]*tensor.Tensor{"x": x}})
	want := 1.5 + 1.5 + 1.0 // max(1.5,1.5) + min(2.25,1.5) + floor(1.5)
	if math.Abs(res.Outputs["out"].At(0)-want) > 1e-12 {
		t.Errorf("builtins = %g, want %g", res.Outputs["out"].At(0), want)
	}
}
