package ekl

import (
	"testing"
)

// Fuzz targets for the EKL frontend. Seed corpora are committed under
// testdata/fuzz/ so `go test` exercises them on every CI run and
// `go test -fuzz=FuzzParseRoundTrip ./internal/ekl` explores from there.

func fuzzSeeds(f *testing.F) {
	f.Helper()
	for _, s := range []string{
		"kernel k {\n  input a : [4]\n  y = a[i] + 1\n  output y\n}\n",
		"kernel dot {\n  input a : [N]\n  input b : [N]\n  s = sum(i) a[i] * b[i]\n  output s\n}\n",
		"kernel g {\n  input t : [8] index\n  input v : [8, 8]\n  y = v[t[i], i]\n  output y[i]\n}\n",
		"kernel p {\n  param c = -2.5\n  iparam n\n  input x : [3, 5]\n  y = select(x[i, j] <= c, 0, x[i, j] / c)\n  output y[i, j]\n}\n",
		"kernel w {\n  input a : [4]\n  y = [a[i], -a[i]]\n  z = sum(i) y[i, q] * 2\n  output z\n}\n",
		"kernel acc {\n  input a : [6]\n  s = 0\n  s += sum(i) exp(a[i])\n  output s\n}\n",
		"kernel m {\n  input a : [2, 3]\n  input b : [3, 2]\n  c = sum(k) a[i, k] * b[k, j]\n  output c[i, j]\n}\n",
		"kernel bad {",
		"kernel x { input a : [0] }",
		"# comment only\n",
		"kernel u { input a : [2]\n y = 1e309 * a[i]\n output y }",
	} {
		f.Add(s)
	}
}

// FuzzLex: the lexer never panics, and successful runs always end in EOF
// with non-empty token texts.
func FuzzLex(f *testing.F) {
	fuzzSeeds(f)
	f.Add("1.2e+3 <= >= != += # trail")
	f.Add("\x00\xff weird é")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := NewLexer(src).Lex()
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream must end in EOF: %v", toks)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.Text == "" {
				t.Fatalf("non-EOF token with empty text at %d:%d", tok.Line, tok.Col)
			}
			if tok.Line < 1 || tok.Col < 1 {
				t.Fatalf("token %q has invalid position %d:%d", tok.Text, tok.Line, tok.Col)
			}
		}
	})
}

// FuzzParseRoundTrip: parsing never panics, and everything that parses
// prints to canonical source that re-parses and re-prints identically.
func FuzzParseRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		for _, k := range prog.Kernels {
			printed := k.Source()
			k2, err := ParseKernel(printed)
			if err != nil {
				t.Fatalf("canonical print does not reparse: %v\n--- printed ---\n%s", err, printed)
			}
			if again := k2.Source(); again != printed {
				t.Fatalf("print -> parse -> print unstable:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
			}
		}
	})
}
