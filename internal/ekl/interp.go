package ekl

import (
	"fmt"
	"math"
	"sort"

	"everest/internal/tensor"
)

// Binding supplies concrete tensors and scalars for one kernel execution.
type Binding struct {
	Tensors map[string]*tensor.Tensor
	Scalars map[string]float64
}

// Result holds the tensors produced by a kernel run.
type Result struct {
	// Outputs maps declared output names to their tensors.
	Outputs map[string]*tensor.Tensor
	// All maps every assigned name (including temporaries) to its tensor,
	// useful for debugging and for the lowering tests.
	All map[string]*tensor.Tensor
	// Dims maps symbolic dimension names to the concrete extents they were
	// unified with at bind time.
	Dims map[string]int
	// Trace records, per executed statement, the inferred iteration space.
	// The MLIR lowering uses it to emit concrete loop nests.
	Trace []StmtInfo
}

// StmtInfo records the iteration space inferred for one statement.
type StmtInfo struct {
	Name    string         // assigned tensor
	Free    []string       // free indices in iteration order
	Extents map[string]int // extent of every index (free and summed)
	SumIdx  []string       // reduction indices, if any
}

// Run type-checks the kernel against the binding and interprets it. This is
// the reference semantics of EKL: the HLS path must produce numerically
// identical results (experiment E1).
func (k *Kernel) Run(b Binding) (*Result, error) {
	env, dims, err := k.bind(b)
	if err != nil {
		return nil, err
	}
	for _, s := range k.Stmts {
		if err := env.exec(s); err != nil {
			return nil, fmt.Errorf("ekl: kernel %q line %d: %w", k.Name, s.Line, err)
		}
	}
	res := &Result{Outputs: make(map[string]*tensor.Tensor), All: env.tensors, Dims: dims, Trace: env.trace}
	for _, out := range k.Outputs {
		t, ok := env.tensors[out.Name]
		if !ok {
			return nil, fmt.Errorf("ekl: kernel %q: output %q never assigned", k.Name, out.Name)
		}
		res.Outputs[out.Name] = t
	}
	return res, nil
}

// Check performs the static (binding-independent) checks: unique names,
// outputs assigned, pair expressions only at statement level, subscript
// bases are identifiers.
func (k *Kernel) Check() error {
	seen := make(map[string]string)
	declare := func(name, what string) error {
		if prev, ok := seen[name]; ok {
			return fmt.Errorf("ekl: kernel %q: %s %q redeclares %s", k.Name, what, name, prev)
		}
		seen[name] = what
		return nil
	}
	for _, in := range k.Inputs {
		if err := declare(in.Name, "input"); err != nil {
			return err
		}
		if len(in.Dims) == 0 {
			return fmt.Errorf("ekl: kernel %q: input %q has no dimensions", k.Name, in.Name)
		}
	}
	for _, p := range k.Params {
		if err := declare(p.Name, "param"); err != nil {
			return err
		}
	}
	assigned := make(map[string]bool)
	for _, s := range k.Stmts {
		if seen[s.Name] == "input" || seen[s.Name] == "param" {
			return fmt.Errorf("ekl: kernel %q line %d: cannot assign to %s %q", k.Name, s.Line, seen[s.Name], s.Name)
		}
		assigned[s.Name] = true
		var bad error
		// A pair constructor is only legal as the full statement RHS; any
		// pair nested below the root is an error.
		rootsToWalk := []Expr{s.RHS}
		if p, ok := s.RHS.(PairExpr); ok {
			rootsToWalk = []Expr{p.A, p.B}
		}
		for _, root := range rootsToWalk {
			walkExpr(root, func(e Expr) {
				if bad != nil {
					return
				}
				switch t := e.(type) {
				case PairExpr:
					bad = fmt.Errorf("ekl: kernel %q line %d: pair [a, b] is only allowed as a full statement right-hand side", k.Name, s.Line)
				case SubscriptExpr:
					if _, ok := t.Base.(IdentRef); !ok {
						bad = fmt.Errorf("ekl: kernel %q line %d: subscript base must be a tensor name", k.Name, s.Line)
					}
				}
			})
		}
		if bad != nil {
			return bad
		}
	}
	for _, out := range k.Outputs {
		if !assigned[out.Name] {
			return fmt.Errorf("ekl: kernel %q: output %q is never assigned", k.Name, out.Name)
		}
	}
	return nil
}

// bind validates the binding against the declarations and unifies symbolic
// dimension extents.
func (k *Kernel) bind(b Binding) (*evalEnv, map[string]int, error) {
	if err := k.Check(); err != nil {
		return nil, nil, err
	}
	env := &evalEnv{
		kernel:  k,
		tensors: make(map[string]*tensor.Tensor),
		scalars: make(map[string]float64),
	}
	dims := make(map[string]int)
	for _, in := range k.Inputs {
		t, ok := b.Tensors[in.Name]
		if !ok {
			return nil, nil, fmt.Errorf("ekl: kernel %q: missing input tensor %q", k.Name, in.Name)
		}
		if t.Rank() != len(in.Dims) {
			return nil, nil, fmt.Errorf("ekl: kernel %q: input %q has rank %d, declared %d",
				k.Name, in.Name, t.Rank(), len(in.Dims))
		}
		for d, dim := range in.Dims {
			got := t.Shape()[d]
			if dim.Sym != "" {
				if prev, ok := dims[dim.Sym]; ok && prev != got {
					return nil, nil, fmt.Errorf("ekl: kernel %q: dimension %s bound to both %d and %d",
						k.Name, dim.Sym, prev, got)
				}
				dims[dim.Sym] = got
			} else if dim.Size != got {
				return nil, nil, fmt.Errorf("ekl: kernel %q: input %q dim %d is %d, declared %d",
					k.Name, in.Name, d, got, dim.Size)
			}
		}
		env.tensors[in.Name] = t
	}
	for _, p := range k.Params {
		v, ok := b.Scalars[p.Name]
		if !ok {
			if !p.HasDef {
				return nil, nil, fmt.Errorf("ekl: kernel %q: missing parameter %q", k.Name, p.Name)
			}
			v = p.Default
		}
		if p.IsInt && v != math.Trunc(v) {
			return nil, nil, fmt.Errorf("ekl: kernel %q: iparam %q must be integral, got %g", k.Name, p.Name, v)
		}
		env.scalars[p.Name] = v
	}
	return env, dims, nil
}

// evalEnv is the mutable interpreter state.
type evalEnv struct {
	kernel  *Kernel
	tensors map[string]*tensor.Tensor
	scalars map[string]float64
	idx     map[string]int // current index-variable assignment
	trace   []StmtInfo
}

func (e *evalEnv) isTensor(name string) bool { _, ok := e.tensors[name]; return ok }
func (e *evalEnv) isScalar(name string) bool { _, ok := e.scalars[name]; return ok }

// exec executes one statement.
func (e *evalEnv) exec(s *Stmt) error {
	freeOrder, err := e.freeIndices(s)
	if err != nil {
		return err
	}
	extents, err := e.inferExtents(s, freeOrder)
	if err != nil {
		return err
	}

	bounds := make([]int, len(freeOrder))
	for i, name := range freeOrder {
		bounds[i] = extents[name]
	}

	target, err := e.prepareTarget(s, freeOrder, bounds)
	if err != nil {
		return err
	}

	// Record the iteration space for the lowering pipeline, including any
	// reduction indices with their extents.
	info := StmtInfo{Name: s.Name, Free: append([]string(nil), freeOrder...), Extents: extents}
	var sumErr error
	walkExpr(s.RHS, func(x Expr) {
		if sumErr != nil {
			return
		}
		if se, ok := x.(SumExpr); ok {
			info.SumIdx = append(info.SumIdx, se.Indices...)
			sx, err := e.sumExtents(se)
			if err != nil {
				sumErr = err
				return
			}
			for name, ext := range sx {
				info.Extents[name] = ext
			}
		}
	})
	if sumErr != nil {
		return sumErr
	}
	e.trace = append(e.trace, info)

	e.idx = make(map[string]int, len(freeOrder)+4)
	pair, isPair := s.RHS.(PairExpr)
	it := tensor.NewIndexer(bounds)
	lhsIdx := make([]int, 0, len(freeOrder)+1)
	for tuple, ok := it.Next(); ok; tuple, ok = it.Next() {
		for i, name := range freeOrder {
			e.idx[name] = tuple[i]
		}
		lhsIdx = lhsIdx[:0]
		if s.LHS != nil {
			for _, le := range s.LHS {
				v, err := e.evalInt(le)
				if err != nil {
					return err
				}
				lhsIdx = append(lhsIdx, v)
			}
		} else {
			lhsIdx = append(lhsIdx, tuple...)
		}
		if isPair {
			a, err := e.eval(pair.A)
			if err != nil {
				return err
			}
			bv, err := e.eval(pair.B)
			if err != nil {
				return err
			}
			target.Set(a, append(lhsIdx, 0)...)
			target.Set(bv, append(lhsIdx, 1)...)
			continue
		}
		v, err := e.eval(s.RHS)
		if err != nil {
			return err
		}
		if s.Accumulate {
			v += target.At(lhsIdx...)
		}
		target.Set(v, lhsIdx...)
	}
	e.tensors[s.Name] = target
	return nil
}

// freeIndices determines the ordered free index variables of a statement:
// the explicit LHS order when subscripts are given (bare identifiers only),
// otherwise first-appearance order in the RHS.
func (e *evalEnv) freeIndices(s *Stmt) ([]string, error) {
	if s.LHS != nil {
		var order []string
		seen := make(map[string]bool)
		for _, le := range s.LHS {
			walkExpr(le, func(x Expr) {
				if id, ok := x.(IdentRef); ok && e.isIndexVar(id.Name) && !seen[id.Name] {
					seen[id.Name] = true
					order = append(order, id.Name)
				}
			})
		}
		return order, nil
	}
	// Inferred: free index vars of RHS in first-appearance order, skipping
	// sum-bound ones.
	if out := e.kernel.Output(s.Name); out != nil && len(out.Indices) > 0 {
		// Output declarations fix the order (and act as documentation).
		free := e.collectFree(s.RHS)
		freeSet := make(map[string]bool, len(free))
		for _, f := range free {
			freeSet[f] = true
		}
		if len(out.Indices) != len(free) {
			return nil, fmt.Errorf("output %q declares %d indices %v but statement has free indices %v",
				s.Name, len(out.Indices), out.Indices, free)
		}
		for _, ix := range out.Indices {
			if !freeSet[ix] {
				return nil, fmt.Errorf("output %q declares index %q not free in its defining statement", s.Name, ix)
			}
		}
		return append([]string(nil), out.Indices...), nil
	}
	return e.collectFree(s.RHS), nil
}

// collectFree returns the free (not sum-bound) index variables of an
// expression in first-appearance order.
func (e *evalEnv) collectFree(expr Expr) []string {
	var order []string
	seen := make(map[string]bool)
	var walk func(x Expr, bound map[string]bool)
	walk = func(x Expr, bound map[string]bool) {
		switch t := x.(type) {
		case IdentRef:
			if e.isIndexVar(t.Name) && !bound[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				order = append(order, t.Name)
			}
		case SubscriptExpr:
			walk(t.Base, bound)
			for _, ix := range t.Indices {
				walk(ix, bound)
			}
		case BinaryExpr:
			walk(t.L, bound)
			walk(t.R, bound)
		case UnaryExpr:
			walk(t.X, bound)
		case CallExpr:
			for _, a := range t.Args {
				walk(a, bound)
			}
		case SumExpr:
			inner := make(map[string]bool, len(bound)+len(t.Indices))
			for k := range bound {
				inner[k] = true
			}
			for _, ix := range t.Indices {
				inner[ix] = true
			}
			walk(t.Body, inner)
		case PairExpr:
			walk(t.A, bound)
			walk(t.B, bound)
		}
	}
	walk(expr, map[string]bool{})
	return order
}

// isIndexVar reports whether a name denotes an index variable: not a tensor,
// not a scalar parameter.
func (e *evalEnv) isIndexVar(name string) bool {
	return !e.isTensor(name) && !e.isScalar(name)
}

// inferExtents derives the extent of every index variable used in the
// statement from the subscript positions where it appears bare, including
// LHS positions against an existing target.
func (e *evalEnv) inferExtents(s *Stmt, free []string) (map[string]int, error) {
	extents := make(map[string]int)
	bind := func(name string, ext int) error {
		if prev, ok := extents[name]; ok && prev != ext {
			return fmt.Errorf("index %q constrained to both %d and %d", name, prev, ext)
		}
		extents[name] = ext
		return nil
	}

	var err error
	record := func(x Expr) {
		if err != nil {
			return
		}
		sub, ok := x.(SubscriptExpr)
		if !ok {
			return
		}
		base := sub.Base.(IdentRef)
		t, ok := e.tensors[base.Name]
		if !ok {
			err = fmt.Errorf("unknown tensor %q", base.Name)
			return
		}
		if len(sub.Indices) != t.Rank() {
			err = fmt.Errorf("tensor %q has rank %d but %d subscripts", base.Name, t.Rank(), len(sub.Indices))
			return
		}
		for d, ix := range sub.Indices {
			if id, ok := ix.(IdentRef); ok && e.isIndexVar(id.Name) {
				if berr := bind(id.Name, t.Shape()[d]); berr != nil {
					err = berr
					return
				}
			}
		}
	}
	walkExpr(s.RHS, record)
	if err != nil {
		return nil, err
	}

	// LHS subscripts against an existing target also constrain.
	if s.LHS != nil {
		if t, ok := e.tensors[s.Name]; ok {
			if len(s.LHS) != t.Rank() {
				return nil, fmt.Errorf("target %q has rank %d but %d subscripts", s.Name, t.Rank(), len(s.LHS))
			}
			for d, le := range s.LHS {
				if id, ok := le.(IdentRef); ok && e.isIndexVar(id.Name) {
					if berr := bind(id.Name, t.Shape()[d]); berr != nil {
						return nil, berr
					}
				}
			}
		}
	}

	// Every index variable referenced in the statement needs an extent.
	var missing []string
	check := func(name string) {
		if _, ok := extents[name]; !ok {
			missing = append(missing, name)
		}
	}
	for _, f := range free {
		check(f)
	}
	walkExpr(s.RHS, func(x Expr) {
		if se, ok := x.(SumExpr); ok {
			for _, ix := range se.Indices {
				check(ix)
			}
		}
	})
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("cannot infer extent of index %v: indices must appear bare in at least one subscript", missing)
	}
	return extents, nil
}

// prepareTarget returns the tensor the statement writes into, creating it
// when needed.
func (e *evalEnv) prepareTarget(s *Stmt, free []string, bounds []int) (*tensor.Tensor, error) {
	existing, exists := e.tensors[s.Name]
	_, isPair := s.RHS.(PairExpr)
	if exists {
		if s.LHS == nil && !s.Accumulate {
			// Full redefinition: fresh tensor.
			exists = false
		}
	}
	if exists {
		return existing, nil
	}
	if s.Accumulate {
		return nil, fmt.Errorf("accumulation target %q does not exist yet", s.Name)
	}
	shape := bounds
	if s.LHS != nil {
		// Creating via explicit LHS requires bare distinct index vars so the
		// shape is well-defined.
		if len(s.LHS) != len(free) {
			return nil, fmt.Errorf("cannot create %q: explicit subscripts must be bare distinct index variables", s.Name)
		}
		for i, le := range s.LHS {
			id, ok := le.(IdentRef)
			if !ok || id.Name != free[i] {
				return nil, fmt.Errorf("cannot create %q: subscript %d is not a bare index variable", s.Name, i)
			}
		}
	}
	if isPair {
		shape = append(append([]int(nil), bounds...), 2)
	}
	return tensor.New(shape...), nil
}

// eval evaluates an expression to a float64 under the current index
// assignment.
func (e *evalEnv) eval(x Expr) (float64, error) {
	switch t := x.(type) {
	case NumberLit:
		return t.Value, nil

	case IdentRef:
		if v, ok := e.scalars[t.Name]; ok {
			return v, nil
		}
		if v, ok := e.idx[t.Name]; ok {
			return float64(v), nil
		}
		if tt, ok := e.tensors[t.Name]; ok {
			if tt.Rank() == 0 {
				return tt.Item(), nil
			}
			return 0, fmt.Errorf("tensor %q used without subscripts", t.Name)
		}
		return 0, fmt.Errorf("unbound identifier %q", t.Name)

	case SubscriptExpr:
		base := t.Base.(IdentRef)
		tt, ok := e.tensors[base.Name]
		if !ok {
			return 0, fmt.Errorf("unknown tensor %q", base.Name)
		}
		idx := make([]int, len(t.Indices))
		for d, ix := range t.Indices {
			v, err := e.evalInt(ix)
			if err != nil {
				return 0, err
			}
			if v < 0 || v >= tt.Shape()[d] {
				return 0, fmt.Errorf("index %d out of range [0,%d) in dim %d of %q",
					v, tt.Shape()[d], d, base.Name)
			}
			idx[d] = v
		}
		return tt.At(idx...), nil

	case BinaryExpr:
		l, err := e.eval(t.L)
		if err != nil {
			return 0, err
		}
		r, err := e.eval(t.R)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			return l / r, nil
		case "<=":
			return boolVal(l <= r), nil
		case "<":
			return boolVal(l < r), nil
		case ">=":
			return boolVal(l >= r), nil
		case ">":
			return boolVal(l > r), nil
		case "==":
			return boolVal(l == r), nil
		case "!=":
			return boolVal(l != r), nil
		}
		return 0, fmt.Errorf("unknown operator %q", t.Op)

	case UnaryExpr:
		v, err := e.eval(t.X)
		if err != nil {
			return 0, err
		}
		return -v, nil

	case CallExpr:
		args := make([]float64, len(t.Args))
		for i, a := range t.Args {
			v, err := e.eval(a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		switch t.Fn {
		case "select":
			if args[0] != 0 {
				return args[1], nil
			}
			return args[2], nil
		case "exp":
			return math.Exp(args[0]), nil
		case "log":
			return math.Log(args[0]), nil
		case "sqrt":
			return math.Sqrt(args[0]), nil
		case "abs":
			return math.Abs(args[0]), nil
		case "floor":
			return math.Floor(args[0]), nil
		case "min":
			return math.Min(args[0], args[1]), nil
		case "max":
			return math.Max(args[0], args[1]), nil
		case "pow":
			return math.Pow(args[0], args[1]), nil
		}
		return 0, fmt.Errorf("unknown function %q", t.Fn)

	case SumExpr:
		// Extents of sum indices were validated in inferExtents; re-derive
		// them here from the body's subscripts.
		extents, err := e.sumExtents(t)
		if err != nil {
			return 0, err
		}
		bounds := make([]int, len(t.Indices))
		for i, name := range t.Indices {
			bounds[i] = extents[name]
		}
		saved := make([]int, len(t.Indices))
		hadPrev := make([]bool, len(t.Indices))
		for i, name := range t.Indices {
			saved[i], hadPrev[i] = e.idx[name], hasKey(e.idx, name)
		}
		total := 0.0
		it := tensor.NewIndexer(bounds)
		for tuple, ok := it.Next(); ok; tuple, ok = it.Next() {
			for i, name := range t.Indices {
				e.idx[name] = tuple[i]
			}
			v, err := e.eval(t.Body)
			if err != nil {
				return 0, err
			}
			total += v
		}
		for i, name := range t.Indices {
			if hadPrev[i] {
				e.idx[name] = saved[i]
			} else {
				delete(e.idx, name)
			}
		}
		return total, nil

	case PairExpr:
		return 0, fmt.Errorf("pair expression in value position")
	}
	return 0, fmt.Errorf("unhandled expression %T", x)
}

// sumExtents infers the extents of a SumExpr's indices from bare appearances
// in its body.
func (e *evalEnv) sumExtents(se SumExpr) (map[string]int, error) {
	want := make(map[string]bool, len(se.Indices))
	for _, ix := range se.Indices {
		want[ix] = true
	}
	extents := make(map[string]int, len(se.Indices))
	var err error
	walkExpr(se.Body, func(x Expr) {
		if err != nil {
			return
		}
		sub, ok := x.(SubscriptExpr)
		if !ok {
			return
		}
		base := sub.Base.(IdentRef)
		t, ok := e.tensors[base.Name]
		if !ok {
			return
		}
		for d, ix := range sub.Indices {
			if d >= t.Rank() {
				return
			}
			if id, ok := ix.(IdentRef); ok && want[id.Name] {
				ext := t.Shape()[d]
				if prev, ok := extents[id.Name]; ok && prev != ext {
					err = fmt.Errorf("sum index %q constrained to both %d and %d", id.Name, prev, ext)
					return
				}
				extents[id.Name] = ext
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for _, ix := range se.Indices {
		if _, ok := extents[ix]; !ok {
			return nil, fmt.Errorf("cannot infer extent of sum index %q", ix)
		}
	}
	return extents, nil
}

// evalInt evaluates an expression expected to yield an integer (subscript
// position).
func (e *evalEnv) evalInt(x Expr) (int, error) {
	v, err := e.eval(x)
	if err != nil {
		return 0, err
	}
	r := math.Round(v)
	if math.Abs(v-r) > 1e-9 {
		return 0, fmt.Errorf("subscript value %g is not an integer", v)
	}
	return int(r), nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func hasKey(m map[string]int, k string) bool { _, ok := m[k]; return ok }
