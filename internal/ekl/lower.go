package ekl

import (
	"fmt"
	"strings"

	"everest/internal/mlir"
	"everest/internal/mlir/dialects"
)

// Lower compiles a kernel into the EVEREST MLIR stack (paper Fig. 5): it
// first executes the kernel on the binding to specialize all shapes (shape
// inference by abstract execution), then emits an ekl-dialect module whose
// statement ops carry the concrete iteration spaces.
//
// The returned module verifies under the registered dialects and can be
// progressively lowered with LowerToTeIL and LowerToAffine, which is the
// pipeline measured by experiment E2.
func Lower(k *Kernel, b Binding) (*mlir.Module, *Result, error) {
	res, err := k.Run(b)
	if err != nil {
		return nil, nil, err
	}
	ctx := mlir.NewContext()
	dialects.RegisterAll(ctx)
	m := mlir.NewModule(ctx, k.Name)
	mb := mlir.NewBuilder(ctx, m.Body())

	kop := mb.CreateWithRegions("ekl.kernel", nil, nil, map[string]mlir.Attribute{
		"sym_name": mlir.StringAttr(k.Name),
	}, 1)
	kb := mlir.NewBuilder(ctx, kop.Regions[0].Entry())

	// Materialize inputs and params as ekl.tensor bindings.
	vals := make(map[string]*mlir.Value)
	for _, in := range k.Inputs {
		t := res.All[in.Name]
		elem := mlir.F64()
		if in.IsIndex {
			elem = mlir.Index()
		}
		op := kb.Create("ekl.tensor", nil, []mlir.Type{mlir.TensorOf(elem, t.Shape()...)},
			map[string]mlir.Attribute{"name": mlir.StringAttr(in.Name), "kind": mlir.StringAttr("input")})
		op.Result(0).SetName(in.Name)
		vals[in.Name] = op.Result(0)
	}
	for _, p := range k.Params {
		op := kb.Create("ekl.tensor", nil, []mlir.Type{mlir.TensorOf(mlir.F64())},
			map[string]mlir.Attribute{"name": mlir.StringAttr(p.Name), "kind": mlir.StringAttr("param")})
		op.Result(0).SetName(p.Name)
		vals[p.Name] = op.Result(0)
	}

	// Lower statements in order using the recorded iteration spaces.
	for i, s := range k.Stmts {
		info := res.Trace[i]
		lw := &stmtLowerer{b: kb, vals: vals, info: info, res: res}
		v, err := lw.lowerExpr(s.RHS)
		if err != nil {
			return nil, nil, fmt.Errorf("ekl: lowering %q line %d: %w", s.Name, s.Line, err)
		}
		v.SetName(s.Name)
		vals[s.Name] = v
	}
	for _, out := range k.Outputs {
		kb.Create("ekl.output", []*mlir.Value{vals[out.Name]}, nil,
			map[string]mlir.Attribute{"name": mlir.StringAttr(out.Name)})
	}
	if err := m.Verify(); err != nil {
		return nil, nil, fmt.Errorf("ekl: lowered module does not verify: %w", err)
	}
	return m, res, nil
}

// stmtLowerer lowers one statement's expression tree.
type stmtLowerer struct {
	b    *mlir.Builder
	vals map[string]*mlir.Value
	info StmtInfo
	res  *Result
}

func (l *stmtLowerer) resultType(indices []string) mlir.Type {
	shape := make([]int, len(indices))
	for i, ix := range indices {
		shape[i] = l.info.Extents[ix]
	}
	return mlir.TensorOf(mlir.F64(), shape...)
}

// lowerExpr returns the SSA value of an expression. Values are typed as
// tensors over the expression's free indices.
func (l *stmtLowerer) lowerExpr(e Expr) (*mlir.Value, error) {
	switch t := e.(type) {
	case NumberLit:
		return l.b.ConstantFloat(t.Value, mlir.F64()), nil

	case IdentRef:
		if v, ok := l.vals[t.Name]; ok {
			return v, nil
		}
		// Index variable used as a value: materialize an iota tensor.
		op := l.b.Create("ekl.tensor", nil,
			[]mlir.Type{mlir.TensorOf(mlir.Index(), l.info.Extents[t.Name])},
			map[string]mlir.Attribute{"name": mlir.StringAttr(t.Name), "kind": mlir.StringAttr("iota")})
		return op.Result(0), nil

	case SubscriptExpr:
		base := t.Base.(IdentRef)
		bv, ok := l.vals[base.Name]
		if !ok {
			return nil, fmt.Errorf("unknown tensor %q", base.Name)
		}
		// Trivial subscripts (all bare index variables) are pure access
		// pattern information: no op needed, the einsum spec captures them.
		trivial := true
		for _, ix := range t.Indices {
			if _, ok := ix.(IdentRef); !ok {
				trivial = false
				break
			}
		}
		if trivial {
			return bv, nil
		}
		// Non-trivial subscripts (arithmetic or nested tensors) become an
		// explicit gather: this is the "subscripted subscripts" feature.
		operands := []*mlir.Value{bv}
		var pattern []string
		for _, ix := range t.Indices {
			switch iv := ix.(type) {
			case IdentRef:
				pattern = append(pattern, iv.Name)
			default:
				idxVal, err := l.lowerExpr(ix)
				if err != nil {
					return nil, err
				}
				operands = append(operands, idxVal)
				pattern = append(pattern, fmt.Sprintf("#%d", len(operands)-1))
			}
		}
		free := l.freeOf(t)
		op := l.b.Create("ekl.gather", operands, []mlir.Type{l.resultType(free)},
			map[string]mlir.Attribute{"pattern": mlir.StringAttr(strings.Join(pattern, ","))})
		return op.Result(0), nil

	case BinaryExpr:
		lv, err := l.lowerExpr(t.L)
		if err != nil {
			return nil, err
		}
		rv, err := l.lowerExpr(t.R)
		if err != nil {
			return nil, err
		}
		free := l.freeOf(t)
		op := l.b.Create("ekl.binary", []*mlir.Value{lv, rv}, []mlir.Type{l.resultType(free)},
			map[string]mlir.Attribute{"fn": mlir.StringAttr(t.Op)})
		return op.Result(0), nil

	case UnaryExpr:
		xv, err := l.lowerExpr(t.X)
		if err != nil {
			return nil, err
		}
		op := l.b.Create("ekl.unary", []*mlir.Value{xv}, []mlir.Type{xv.Type()},
			map[string]mlir.Attribute{"fn": mlir.StringAttr("neg")})
		return op.Result(0), nil

	case CallExpr:
		args := make([]*mlir.Value, len(t.Args))
		for i, a := range t.Args {
			v, err := l.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		free := l.freeOf(t)
		if t.Fn == "select" {
			op := l.b.Create("ekl.select", args, []mlir.Type{l.resultType(free)}, nil)
			return op.Result(0), nil
		}
		if len(args) == 1 {
			op := l.b.Create("ekl.unary", args, []mlir.Type{l.resultType(free)},
				map[string]mlir.Attribute{"fn": mlir.StringAttr(t.Fn)})
			return op.Result(0), nil
		}
		op := l.b.Create("ekl.binary", args, []mlir.Type{l.resultType(free)},
			map[string]mlir.Attribute{"fn": mlir.StringAttr(t.Fn)})
		return op.Result(0), nil

	case SumExpr:
		body, err := l.lowerExpr(t.Body)
		if err != nil {
			return nil, err
		}
		bodyIdx := l.freeOfWithSum(t.Body)
		outIdx := removeAll(bodyIdx, t.Indices)
		spec := letterSpec(bodyIdx) + "->" + letterSpecSubset(bodyIdx, outIdx)
		redBounds := make([]int, len(t.Indices))
		for i, ix := range t.Indices {
			redBounds[i] = l.info.Extents[ix]
		}
		op := l.b.Create("ekl.einsum", []*mlir.Value{body}, []mlir.Type{l.resultType(outIdx)},
			map[string]mlir.Attribute{
				"spec":          mlir.StringAttr(spec),
				"indices":       mlir.StringsAttr(bodyIdx...),
				"reduce":        mlir.StringsAttr(t.Indices...),
				"reduce_bounds": mlir.IntsAttr(redBounds...),
			})
		return op.Result(0), nil

	case PairExpr:
		av, err := l.lowerExpr(t.A)
		if err != nil {
			return nil, err
		}
		bv, err := l.lowerExpr(t.B)
		if err != nil {
			return nil, err
		}
		free := append(l.freeOf(t), "__pair")
		shape := make([]int, 0, len(free))
		for _, ix := range free[:len(free)-1] {
			shape = append(shape, l.info.Extents[ix])
		}
		shape = append(shape, 2)
		op := l.b.Create("ekl.binary", []*mlir.Value{av, bv},
			[]mlir.Type{mlir.TensorOf(mlir.F64(), shape...)},
			map[string]mlir.Attribute{"fn": mlir.StringAttr("pair")})
		return op.Result(0), nil
	}
	return nil, fmt.Errorf("unhandled expression %T", e)
}

// freeOf returns the free index variables of an expression (those with a
// recorded extent), in first-appearance order, ignoring sum-bound ones.
func (l *stmtLowerer) freeOf(e Expr) []string {
	var order []string
	seen := make(map[string]bool)
	var walk func(x Expr, bound map[string]bool)
	walk = func(x Expr, bound map[string]bool) {
		switch t := x.(type) {
		case IdentRef:
			if _, isVal := l.vals[t.Name]; isVal {
				return
			}
			if _, hasExt := l.info.Extents[t.Name]; hasExt && !bound[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				order = append(order, t.Name)
			}
		case SubscriptExpr:
			for _, ix := range t.Indices {
				walk(ix, bound)
			}
		case BinaryExpr:
			walk(t.L, bound)
			walk(t.R, bound)
		case UnaryExpr:
			walk(t.X, bound)
		case CallExpr:
			for _, a := range t.Args {
				walk(a, bound)
			}
		case SumExpr:
			inner := make(map[string]bool, len(bound)+len(t.Indices))
			for k := range bound {
				inner[k] = true
			}
			for _, ix := range t.Indices {
				inner[ix] = true
			}
			walk(t.Body, inner)
		case PairExpr:
			walk(t.A, bound)
			walk(t.B, bound)
		}
	}
	walk(e, map[string]bool{})
	return order
}

// freeOfWithSum is freeOf but keeps sum-bound indices (for einsum specs).
func (l *stmtLowerer) freeOfWithSum(e Expr) []string {
	var order []string
	seen := make(map[string]bool)
	walkExpr(e, func(x Expr) {
		if id, ok := x.(IdentRef); ok {
			if _, isVal := l.vals[id.Name]; isVal {
				return
			}
			if _, hasExt := l.info.Extents[id.Name]; hasExt && !seen[id.Name] {
				seen[id.Name] = true
				order = append(order, id.Name)
			}
		}
	})
	return order
}

func removeAll(from, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, r := range remove {
		rm[r] = true
	}
	var out []string
	for _, f := range from {
		if !rm[f] {
			out = append(out, f)
		}
	}
	return out
}

// letterSpec assigns each index a distinct letter a.. and renders them.
func letterSpec(indices []string) string {
	var b strings.Builder
	for i := range indices {
		b.WriteByte(byte('a' + i%26))
	}
	return b.String()
}

func letterSpecSubset(all, subset []string) string {
	pos := make(map[string]int, len(all))
	for i, name := range all {
		pos[name] = i
	}
	var b strings.Builder
	for _, s := range subset {
		b.WriteByte(byte('a' + pos[s]%26))
	}
	return b.String()
}

// LowerToESN normalizes ekl.einsum contractions into the esn dialect
// (Fig. 5: the shared Einstein-notation layer between ekl and cfdlang). The
// rewrite is in place: the op keeps its operands, results, and spec.
func LowerToESN() mlir.Pass {
	return mlir.PassFunc{PassName: "ekl-to-esn", Fn: func(m *mlir.Module) error {
		m.Walk(func(op *mlir.Op) {
			if op.Is("ekl.einsum") {
				op.Dialect = "esn"
				op.Name = "contract"
			}
		})
		return nil
	}}
}

// LowerToTeIL rewrites einsum/select/gather/binary statement ops into
// teil.loop nests (paper: ekl -> teil lowering). It returns a module pass.
func LowerToTeIL() mlir.Pass {
	return mlir.PassFunc{PassName: "ekl-to-teil", Fn: func(m *mlir.Module) error {
		ctx := m.Context()
		m.WalkBlocks(func(blk *mlir.Block) {
			for _, op := range append([]*mlir.Op(nil), blk.Ops...) {
				switch {
				case op.Dialect == "ekl":
					switch op.Name {
					case "einsum", "select", "gather", "binary", "unary":
						lowerStmtOpToLoop(ctx, op)
					}
				case op.Is("esn.contract"), op.Is("esn.map"):
					// Normalized Einstein-notation ops lower identically.
					lowerStmtOpToLoop(ctx, op)
				}
			}
		})
		return nil
	}}
}

// lowerStmtOpToLoop attaches a teil.loop region to the op describing its
// iteration space: the loop body loads each operand, applies the op's
// function and stores the result. The original op is annotated rather than
// replaced so SSA uses stay valid; the annotation is what the HLS frontend
// and the affine lowering consume.
func lowerStmtOpToLoop(ctx *mlir.Context, op *mlir.Op) {
	resT, ok := op.Result(0).Type().(mlir.TensorType)
	if !ok {
		return
	}
	indices := make([]mlir.Attribute, 0, resT.Rank())
	bounds := make([]mlir.Attribute, 0, resT.Rank())
	for d, ext := range resT.Shape {
		indices = append(indices, mlir.StringAttr(fmt.Sprintf("i%d", d)))
		bounds = append(bounds, mlir.IntAttr(ext))
	}
	// Reduction dims extend the nest, with extents recorded at einsum
	// creation time.
	if red, ok := op.Attrs["reduce"].(mlir.ArrayAttr); ok {
		redBounds, _ := op.Attrs["reduce_bounds"].(mlir.ArrayAttr)
		for r := range red {
			indices = append(indices, mlir.StringAttr(fmt.Sprintf("r%d", r)))
			ext := mlir.IntAttr(2)
			if r < len(redBounds) {
				if ia, ok := redBounds[r].(mlir.IntAttr); ok {
					ext = ia
				}
			}
			bounds = append(bounds, ext)
		}
	}
	region := op.AddRegion()
	body := region.Entry()
	for range indices {
		body.AddArg(ctx, mlir.Index(), "iv")
	}
	bb := mlir.NewBuilder(ctx, body)
	var loaded []*mlir.Value
	for _, operand := range op.Operands {
		l := bb.Create("teil.load", []*mlir.Value{operand}, []mlir.Type{mlir.F64()},
			map[string]mlir.Attribute{"note": mlir.StringAttr("operand element")})
		loaded = append(loaded, l.Result(0))
	}
	var v *mlir.Value
	switch {
	case len(loaded) == 0:
		v = bb.ConstantFloat(0, mlir.F64())
	case len(loaded) == 1:
		v = loaded[0]
	default:
		acc := loaded[0]
		for _, next := range loaded[1:] {
			o := bb.Create("teil.binary", []*mlir.Value{acc, next}, []mlir.Type{mlir.F64()},
				map[string]mlir.Attribute{"fn": mlir.StringAttr(mlir.GetString(op.Attrs, "fn", "*"))})
			acc = o.Result(0)
		}
		v = acc
	}
	if _, isReduce := op.Attrs["reduce"]; isReduce {
		zero := bb.ConstantFloat(0, mlir.F64())
		o := bb.Create("teil.accumulate", []*mlir.Value{zero, v}, []mlir.Type{mlir.F64()}, nil)
		v = o.Result(0)
	}
	bb.Create("teil.store", []*mlir.Value{v, v}, nil, nil)
	bb.Create("teil.yield", nil, nil, nil)

	op.SetAttr("teil.lowered", mlir.BoolAttr(true))
	op.SetAttr("indices", mlir.ArrayAttr(indices))
	op.SetAttr("bounds", mlir.ArrayAttr(bounds))
}

// LowerToAffine expands every teil-lowered statement op into nested
// affine.for loops, the form consumed by the HLS scheduler.
func LowerToAffine() mlir.Pass {
	return mlir.PassFunc{PassName: "teil-to-affine", Fn: func(m *mlir.Module) error {
		ctx := m.Context()
		var rewrite []*mlir.Op
		m.Walk(func(op *mlir.Op) {
			if mlir.GetBool(op.Attrs, "teil.lowered", false) && !mlir.GetBool(op.Attrs, "affine.lowered", false) {
				rewrite = append(rewrite, op)
			}
		})
		for _, op := range rewrite {
			bounds, _ := op.Attrs["bounds"].(mlir.ArrayAttr)
			region := op.AddRegion()
			cur := mlir.NewBuilder(ctx, region.Entry())
			for _, battr := range bounds {
				ext, _ := battr.(mlir.IntAttr)
				forOp := cur.CreateWithRegions("affine.for", nil, nil, map[string]mlir.Attribute{
					"lower": mlir.IntAttr(0), "upper": ext,
				}, 1)
				inner := forOp.Regions[0].Entry()
				inner.AddArg(ctx, mlir.Index(), "iv")
				cur = mlir.NewBuilder(ctx, inner)
			}
			// Loads read from the op's operands (visible in the region);
			// when the op has none, a constant stands in for the element.
			var src *mlir.Value
			if len(op.Operands) > 0 {
				src = op.Operand(0)
			} else {
				src = cur.ConstantFloat(0, mlir.F64())
			}
			ld := cur.Create("affine.load", []*mlir.Value{src}, []mlir.Type{mlir.F64()}, nil)
			cur.Create("affine.store", []*mlir.Value{ld.Result(0), src}, nil, nil)
			cur.Create("affine.yield", nil, nil, nil)
			op.SetAttr("affine.lowered", mlir.BoolAttr(true))
		}
		return nil
	}}
}

// SpecializedShapes returns name -> shape for everything the kernel computed
// under the binding; used by tests and by Olympus buffer sizing.
func SpecializedShapes(res *Result) map[string][]int {
	out := make(map[string][]int, len(res.All))
	for name, t := range res.All {
		out[name] = t.Shape()
	}
	return out
}
