package ekl

import (
	"fmt"
	"strings"
)

// Program is a collection of kernels parsed from one source unit.
type Program struct {
	Kernels []*Kernel
}

// Find returns the kernel with the given name, or nil.
func (p *Program) Find(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Kernel is one EKL kernel: declarations plus ordered statements.
type Kernel struct {
	Name    string
	Inputs  []*TensorDecl
	Params  []*ParamDecl
	Outputs []*OutputDecl
	Stmts   []*Stmt
	Line    int
}

// Input returns the input declaration with the given name, or nil.
func (k *Kernel) Input(name string) *TensorDecl {
	for _, in := range k.Inputs {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// Output returns the output declaration with the given name, or nil.
func (k *Kernel) Output(name string) *OutputDecl {
	for _, out := range k.Outputs {
		if out.Name == name {
			return out
		}
	}
	return nil
}

// SourceLines returns the number of statement lines, the metric used by the
// E1 compactness experiment (Fig. 3: ~10 EKL lines vs ~200 Fortran lines).
func (k *Kernel) SourceLines() int { return len(k.Stmts) }

// TensorDecl declares an input tensor: a shape of symbolic (capitalized
// identifiers) or literal extents, and whether it is integer-valued (index).
type TensorDecl struct {
	Name    string
	Dims    []Dim
	IsIndex bool
	Line    int
}

// Dim is one declared dimension: either a literal Size or a symbolic Sym.
type Dim struct {
	Sym  string // non-empty for symbolic extents ("X")
	Size int    // used when Sym == ""
}

func (d Dim) String() string {
	if d.Sym != "" {
		return d.Sym
	}
	return fmt.Sprintf("%d", d.Size)
}

// ParamDecl declares a scalar parameter. Integer parameters (iparam) may be
// used inside subscripts.
type ParamDecl struct {
	Name    string
	IsInt   bool
	Default float64
	HasDef  bool
	Line    int
}

// OutputDecl names a produced tensor and (optionally) the index order of its
// dimensions, e.g. "output tau[x, t, p, e, g]".
type OutputDecl struct {
	Name    string
	Indices []string // empty means first-appearance order of the defining stmt
	Line    int
}

// Stmt is one assignment: Name[LHS...] (=|+=) RHS.
type Stmt struct {
	Name       string
	LHS        []Expr // explicit LHS subscripts; nil means inferred
	Accumulate bool   // true for +=
	RHS        Expr
	Line       int
}

// Expr is an EKL expression node.
type Expr interface {
	String() string
	expr()
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// IdentRef references an index variable, parameter, or rank-0 tensor.
type IdentRef struct{ Name string }

// SubscriptExpr indexes a tensor-valued base with index expressions.
type SubscriptExpr struct {
	Base    Expr
	Indices []Expr
}

// BinaryExpr applies +,-,*,/ or a comparison (which yields 0/1).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies unary minus.
type UnaryExpr struct {
	Op string
	X  Expr
}

// CallExpr applies a builtin function: exp, log, sqrt, abs, min, max, pow,
// floor, or select.
type CallExpr struct {
	Fn   string
	Args []Expr
}

// SumExpr reduces the body over the named indices (explicit Σ of Fig. 3).
type SumExpr struct {
	Indices []string
	Body    Expr
}

// PairExpr constructs a 2-window along a fresh trailing dimension, the
// "[j_T, j_T+1]" form of Fig. 3.
type PairExpr struct{ A, B Expr }

func (NumberLit) expr()     {}
func (IdentRef) expr()      {}
func (SubscriptExpr) expr() {}
func (BinaryExpr) expr()    {}
func (UnaryExpr) expr()     {}
func (CallExpr) expr()      {}
func (SumExpr) expr()       {}
func (PairExpr) expr()      {}

func (e NumberLit) String() string { return trimFloat(e.Value) }
func (e IdentRef) String() string  { return e.Name }

func (e SubscriptExpr) String() string {
	parts := make([]string, len(e.Indices))
	for i, ix := range e.Indices {
		parts[i] = ix.String()
	}
	return fmt.Sprintf("%s[%s]", e.Base.String(), strings.Join(parts, ", "))
}

func (e BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}

func (e UnaryExpr) String() string { return fmt.Sprintf("(%s%s)", e.Op, e.X.String()) }

func (e CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}

func (e SumExpr) String() string {
	return fmt.Sprintf("sum(%s) %s", strings.Join(e.Indices, ", "), e.Body.String())
}

func (e PairExpr) String() string {
	return fmt.Sprintf("[%s, %s]", e.A.String(), e.B.String())
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// walkExpr visits e and all children in pre-order.
func walkExpr(e Expr, fn func(Expr)) {
	fn(e)
	switch t := e.(type) {
	case SubscriptExpr:
		walkExpr(t.Base, fn)
		for _, ix := range t.Indices {
			walkExpr(ix, fn)
		}
	case BinaryExpr:
		walkExpr(t.L, fn)
		walkExpr(t.R, fn)
	case UnaryExpr:
		walkExpr(t.X, fn)
	case CallExpr:
		for _, a := range t.Args {
			walkExpr(a, fn)
		}
	case SumExpr:
		walkExpr(t.Body, fn)
	case PairExpr:
		walkExpr(t.A, fn)
		walkExpr(t.B, fn)
	}
}
