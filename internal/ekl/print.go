package ekl

import (
	"fmt"
	"strings"
)

// Source renders the kernel back to parseable EKL source in canonical form:
// two-space indentation, declarations before statements, expressions
// printed fully parenthesized. Parse(k.Source()) yields a kernel that
// prints identically, which is the round-trip property the fuzz tests
// assert and what `basecamp compile` shows for the normalized kernel.
func (k *Kernel) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s {\n", k.Name)
	for _, in := range k.Inputs {
		dims := make([]string, len(in.Dims))
		for i, d := range in.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&b, "  input %s : [%s]", in.Name, strings.Join(dims, ", "))
		if in.IsIndex {
			b.WriteString(" index")
		}
		b.WriteString("\n")
	}
	for _, p := range k.Params {
		kw := "param"
		if p.IsInt {
			kw = "iparam"
		}
		fmt.Fprintf(&b, "  %s %s", kw, p.Name)
		if p.HasDef {
			fmt.Fprintf(&b, " = %s", trimFloat(p.Default))
		}
		b.WriteString("\n")
	}
	for _, s := range k.Stmts {
		fmt.Fprintf(&b, "  %s", s.Name)
		if len(s.LHS) > 0 {
			parts := make([]string, len(s.LHS))
			for i, e := range s.LHS {
				parts[i] = e.String()
			}
			fmt.Fprintf(&b, "[%s]", strings.Join(parts, ", "))
		}
		op := "="
		if s.Accumulate {
			op = "+="
		}
		fmt.Fprintf(&b, " %s %s\n", op, s.RHS.String())
	}
	for _, out := range k.Outputs {
		fmt.Fprintf(&b, "  output %s", out.Name)
		if len(out.Indices) > 0 {
			fmt.Fprintf(&b, "[%s]", strings.Join(out.Indices, ", "))
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}
