package ekl

import (
	"strings"
	"testing"

	"everest/internal/tensor"
)

func TestProgramFindMultipleKernels(t *testing.T) {
	src := `
kernel first {
  input a : [N]
  out = a[i]
  output out[i]
}
kernel second {
  input b : [M]
  res = b[i] * 2
  output res[i]
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(prog.Kernels))
	}
	if prog.Find("second") == nil || prog.Find("ghost") != nil {
		t.Error("Find broken")
	}
	if _, err := ParseKernel(src); err == nil {
		t.Error("ParseKernel must reject multi-kernel source")
	}
}

func TestKernelAccessors(t *testing.T) {
	k := mustParse(t, axpySrc)
	if k.Input("x") == nil || k.Input("ghost") != nil {
		t.Error("Input lookup broken")
	}
	if k.Output("out") == nil || k.Output("ghost") != nil {
		t.Error("Output lookup broken")
	}
}

func TestExprStrings(t *testing.T) {
	src := `
kernel s {
  input a : [N]
  input j : [M] index
  param w = 1.5
  t = [j[i], j[i]+1]
  out = select(a[i] <= w, -a[i], sum(q) a[q] * a[q]) / 2
  output out[i]
}
`
	k := mustParse(t, src)
	pair := k.Stmts[0].RHS.String()
	if !strings.Contains(pair, "[j[i], (j[i] + 1)]") {
		t.Errorf("pair String = %q", pair)
	}
	sel := k.Stmts[1].RHS.String()
	for _, frag := range []string{"select", "(a[i] <= w)", "(-a[i])", "sum(q)", "/ 2"} {
		if !strings.Contains(sel, frag) {
			t.Errorf("expr String %q missing %q", sel, frag)
		}
	}
	if (Dim{Sym: "N"}).String() != "N" || (Dim{Size: 4}).String() != "4" {
		t.Error("Dim String broken")
	}
}

func TestNegativeParamDefault(t *testing.T) {
	src := `
kernel neg {
  input a : [N]
  param bias = -2.5
  out = a[i] + bias
  output out[i]
}
`
	k := mustParse(t, src)
	res, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.FromData([]float64{1}, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out"].At(0) != -1.5 {
		t.Errorf("negative default = %g", res.Outputs["out"].At(0))
	}
}

func TestIparamRejectsNonIntegral(t *testing.T) {
	src := `
kernel ip {
  input a : [N]
  iparam k
  out = a[i] + k
  output out[i]
}
`
	kk := mustParse(t, src)
	bind := Binding{
		Tensors: map[string]*tensor.Tensor{"a": tensor.New(2)},
		Scalars: map[string]float64{"k": 1.5},
	}
	if _, err := kk.Run(bind); err == nil {
		t.Error("fractional iparam must fail")
	}
	bind.Scalars["k"] = 2
	if _, err := kk.Run(bind); err != nil {
		t.Errorf("integral iparam must pass: %v", err)
	}
}

func TestNestedSumRestoresIndexState(t *testing.T) {
	// An index reused between nested sums must be restored after the inner
	// reduction completes.
	src := `
kernel nest {
  input m : [A, B]
  out = sum(i) (sum(j) m[i, j]) * (sum(j) m[i, j])
  output out
}
`
	k := mustParse(t, src)
	m := tensor.FromData([]float64{1, 2, 3, 4}, 2, 2)
	res, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{"m": m}})
	if err != nil {
		t.Fatal(err)
	}
	// (1+2)^2 + (3+4)^2 = 9 + 49 = 58.
	if got := res.Outputs["out"].Item(); got != 58 {
		t.Errorf("nested sums = %g, want 58", got)
	}
}

func TestDivisionAndComparisonOps(t *testing.T) {
	src := `
kernel ops {
  input a : [N]
  input b : [N]
  out = (a[i] / b[i]) * (a[i] != b[i]) + (a[i] == b[i]) * 100 + (a[i] > b[i]) + (a[i] >= b[i])
  output out[i]
}
`
	k := mustParse(t, src)
	a := tensor.FromData([]float64{6, 5}, 2)
	b := tensor.FromData([]float64{3, 5}, 2)
	res, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{"a": a, "b": b}})
	if err != nil {
		t.Fatal(err)
	}
	// i=0: 6/3*1 + 0 + 1 + 1 = 4; i=1: 1*0 + 100 + 0 + 1 = 101.
	if res.Outputs["out"].At(0) != 4 || res.Outputs["out"].At(1) != 101 {
		t.Errorf("ops = %v", res.Outputs["out"].Data())
	}
}

func TestAccumulateBeforeDefinitionFails(t *testing.T) {
	src := `
kernel acc {
  input a : [N]
  out[i] += a[i]
  output out[i]
}
`
	k := mustParse(t, src)
	_, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{"a": tensor.New(2)}})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("accumulate-before-define must fail, got %v", err)
	}
}

func TestBareTensorUseFails(t *testing.T) {
	src := `
kernel bare {
  input a : [N]
  input b : [N]
  out = a + b[i]
  output out[i]
}
`
	k := mustParse(t, src)
	bind := Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.New(2), "b": tensor.New(2)}}
	if _, err := k.Run(bind); err == nil {
		t.Error("bare tensor reference must fail")
	}
}

func TestSpecializedShapes(t *testing.T) {
	k := mustParse(t, axpySrc)
	res, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{
		"x": tensor.New(3), "y": tensor.New(3)}})
	if err != nil {
		t.Fatal(err)
	}
	shapes := SpecializedShapes(res)
	if len(shapes["out"]) != 1 || shapes["out"][0] != 3 {
		t.Errorf("shapes = %v", shapes)
	}
}

func TestLexerNumbersAndEOF(t *testing.T) {
	toks, err := NewLexer("1.5 2e3 .25 7").Lex()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.5", "2e3", ".25", "7"}
	for i, w := range want {
		if toks[i].Text != w || toks[i].Kind != TokNumber {
			t.Errorf("token %d = %v, want number %q", i, toks[i], w)
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
	if s := toks[0].String(); !strings.Contains(s, "1.5") {
		t.Errorf("token String = %q", s)
	}
}

func TestRedefinitionReplacesTensor(t *testing.T) {
	src := `
kernel redef {
  input a : [N]
  out = a[i]
  out = a[i] * 10
  output out[i]
}
`
	k := mustParse(t, src)
	res, err := k.Run(Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.FromData([]float64{2}, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out"].At(0) != 20 {
		t.Errorf("redefinition = %g, want 20", res.Outputs["out"].At(0))
	}
}
