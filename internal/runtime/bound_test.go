package runtime

import (
	"testing"

	"everest/internal/hls"
	"everest/internal/netsim"
	"everest/internal/platform"
)

func boundBitstream() platform.Bitstream {
	return platform.Bitstream{
		ID: "bs-bound", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1 << 18, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 30000, FF: 40000, DSP: 64, BRAM: 32},
			ClockMHz:  300},
		Config: platform.SystemConfig{Replicas: 2, BusWidthBits: 512, Lanes: 4,
			PackedElements: 4, DoubleBuffered: true, PLMBytes: 1 << 16},
		ElemBits: 32,
	}
}

func TestServiceBoundNilWorkflow(t *testing.T) {
	if _, err := ServiceBound(nil, testCluster(1), platform.NewRegistry(), BoundOptions{}); err == nil {
		t.Fatal("nil workflow accepted")
	}
}

// TestServiceBoundSoftwareChain checks the software-only arithmetic: the
// bound is the sum over tasks of cpu1-on-slowest-node times the slowdown
// cap, plus one worst-case fabric transfer per produced dependency.
func TestServiceBoundSoftwareChain(t *testing.T) {
	c := testCluster(2)
	reg := platform.NewRegistry()
	w := chainWorkflow(t, 3)

	got, err := ServiceBound(w, c, reg, BoundOptions{SlowdownCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	w.Range(func(ts *TaskSpec) bool {
		worst := 0.0
		for _, n := range c.Nodes {
			if v := n.RunCPU(ts.Flops, ts.InputBytes+ts.OutputBytes, 1) * 3; v > worst {
				worst = v
			}
		}
		want += worst
		for _, dep := range ts.Deps {
			d, _ := w.Get(dep)
			want += c.Network.TransferSeconds(d.OutputBytes)
		}
		return true
	})
	if diff := got - want; diff > 1e-12*want || diff < -1e-12*want {
		t.Fatalf("software chain bound = %g, want %g", got, want)
	}

	// Caps below 1 mean "no slowdown", never a discount.
	uncapped, err := ServiceBound(w, c, reg, BoundOptions{SlowdownCap: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := ServiceBound(w, c, reg, BoundOptions{SlowdownCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped != unit {
		t.Fatalf("cap 0.25 bound %g != cap 1 bound %g", uncapped, unit)
	}
	if got <= unit {
		t.Fatalf("cap 3 bound %g must exceed cap 1 bound %g", got, unit)
	}
}

// TestServiceBoundNetOption prices dependency shipping over the explicit
// stack instead of the cluster fabric when BoundOptions.Net is set.
func TestServiceBoundNetOption(t *testing.T) {
	c := testCluster(1)
	w := chainWorkflow(t, 2)
	stack := netsim.TCP10G()

	fabric, err := ServiceBound(w, c, platform.NewRegistry(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	overNet, err := ServiceBound(w, c, platform.NewRegistry(), BoundOptions{Net: &stack})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.Get("t0a")
	wantDelta := stack.SendSeconds(d.OutputBytes) - c.Network.TransferSeconds(d.OutputBytes)
	if diff := (overNet - fabric) - wantDelta; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("net-vs-fabric delta = %g, want %g", overNet-fabric, wantDelta)
	}
}

// TestServiceBoundFPGADominates: a registered accelerable task's bound must
// cover the schedule WCET on every device the bitstream fits, and an
// unknown bitstream id falls back to the software worst case instead of
// erroring (the engine would fall back to software there too).
func TestServiceBoundFPGADominates(t *testing.T) {
	c := testCluster(2)
	reg := platform.NewRegistry()
	bs := boundBitstream()
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	mk := func(id string) *Workflow {
		w := NewWorkflow()
		if err := w.Submit(TaskSpec{Name: "acc", Flops: 1e9,
			InputBytes: 1 << 20, OutputBytes: 1 << 18,
			NeedsFPGA: true, BitstreamID: id}); err != nil {
			t.Fatal(err)
		}
		return w
	}

	got, err := ServiceBound(mk(bs.ID), c, reg, BoundOptions{SlowdownCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	wl := platform.Workload{BytesIn: 1 << 20, BytesOut: 1 << 18, Batches: 4}
	for _, n := range c.Nodes {
		for _, d := range n.Devices {
			tl, err := platform.ExecuteBound(d, bs, wl)
			if err != nil {
				continue
			}
			if got < tl.Total {
				t.Fatalf("bound %g below device WCET %g", got, tl.Total)
			}
		}
	}

	soft, err := ServiceBound(mk("no-such-bitstream"), c, reg, BoundOptions{SlowdownCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if soft <= 0 {
		t.Fatalf("unknown bitstream must fall back to a positive software bound, got %g", soft)
	}
}

func TestServiceBoundNoAliveNode(t *testing.T) {
	c := testCluster(1)
	c.Nodes[0].Fail(0)
	w := chainWorkflow(t, 1)
	if _, err := ServiceBound(w, c, platform.NewRegistry(), BoundOptions{}); err == nil {
		t.Fatal("bound over a dead cluster accepted")
	}
}

// TestServiceBoundDominatesServeAlone is the soundness property at this
// layer: serving the workflow alone on an idle engine never exceeds the
// bound, fork-join and chain shapes alike.
func TestServiceBoundDominatesServeAlone(t *testing.T) {
	for _, tc := range []struct {
		name string
		wf   func() *Workflow
	}{
		{"chain", func() *Workflow { return chainWorkflow(t, 4) }},
		{"forkjoin", func() *Workflow { return forkJoinWorkflow(t, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := testCluster(2)
			reg := platform.NewRegistry()
			bound, err := ServiceBound(tc.wf(), c, reg, BoundOptions{SlowdownCap: 1})
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(c, reg, EngineConfig{})
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			defer e.Shutdown()
			fut, err := e.Submit(tc.wf(), SubmitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sched, err := fut.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if sched.Makespan > bound {
				t.Fatalf("serve-alone makespan %g exceeds proven bound %g", sched.Makespan, bound)
			}
		})
	}
}
