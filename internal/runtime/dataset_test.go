package runtime

import (
	"testing"

	"everest/internal/dataset"
)

// TestTaskBytesDerivation pins the single byte-resolution rule every
// cost model now shares through ReadBytes/WriteBytes/TotalBytes:
// declared bytes win when nonzero, dataset refs fill them in otherwise,
// and Submit normalizes the spec so downstream consumers can keep
// reading InputBytes/OutputBytes directly.
func TestTaskBytesDerivation(t *testing.T) {
	reads := []dataset.Ref{{Name: "pts", Partition: 0, Bytes: 100}, {Name: "pts", Partition: 1, Bytes: 24}}
	writes := []dataset.Ref{{Name: "out", Bytes: 40}}
	cases := []struct {
		name           string
		spec           TaskSpec
		in, out, total int64
	}{
		{"legacy declared bytes", TaskSpec{InputBytes: 10, OutputBytes: 3}, 10, 3, 13},
		{"derived from refs", TaskSpec{Reads: reads, Writes: writes}, 124, 40, 164},
		{"declared bytes win over refs", TaskSpec{InputBytes: 7, OutputBytes: 5, Reads: reads, Writes: writes}, 7, 5, 12},
		{"mixed declaration", TaskSpec{InputBytes: 7, Writes: writes}, 7, 40, 47},
		{"nothing declared", TaskSpec{}, 0, 0, 0},
	}
	for _, c := range cases {
		if got := c.spec.ReadBytes(); got != c.in {
			t.Errorf("%s: ReadBytes = %d, want %d", c.name, got, c.in)
		}
		if got := c.spec.WriteBytes(); got != c.out {
			t.Errorf("%s: WriteBytes = %d, want %d", c.name, got, c.out)
		}
		if got := c.spec.TotalBytes(); got != c.total {
			t.Errorf("%s: TotalBytes = %d, want %d", c.name, got, c.total)
		}
		// Submit normalizes: the stored spec's byte fields equal the
		// resolved sizes, and TotalBytes is stable across that rewrite.
		w := NewWorkflow()
		spec := c.spec
		spec.Name = "t"
		if err := w.Submit(spec); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		stored, _ := w.Get("t")
		if stored.InputBytes != c.in || stored.OutputBytes != c.out || stored.TotalBytes() != c.total {
			t.Errorf("%s: after Submit in=%d out=%d total=%d, want %d/%d/%d",
				c.name, stored.InputBytes, stored.OutputBytes, stored.TotalBytes(), c.in, c.out, c.total)
		}
	}
}
