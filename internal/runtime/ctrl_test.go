package runtime

import (
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
)

// TestScriptedEnvEventsApplyAtStart pins the Start-time condition
// timelines: every scripted kind lands on the right node state, and
// events naming unknown nodes are ignored.
func TestScriptedEnvEventsApplyAtStart(t *testing.T) {
	n0 := platform.NewNode("n0", platform.XeonModel(), platform.AlveoU55C())
	n1 := platform.NewNode("n1", platform.XeonModel(), platform.AlveoU55C())
	c := platform.NewCluster(n0, n1)
	e := NewEngine(c, platform.NewRegistry(), EngineConfig{
		Events: []EnvEvent{
			{Kind: EnvUnplug, Node: "n0", Device: 0, At: 0.5},
			{Kind: EnvSlowdown, Node: "n1", Factor: 3, At: 0.25},
			{Kind: EnvPlug, Node: "n0", Device: 0, At: 1.5},
			{Kind: EnvUnplug, Node: "ghost", Device: 0, At: 0},
		},
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if !n0.DeviceOnlineAt(0, 0.4) {
		t.Fatal("device should be attached before the unplug time")
	}
	if n0.DeviceOnlineAt(0, 1.0) {
		t.Fatal("device should be detached between unplug and plug")
	}
	if !n0.DeviceOnlineAt(0, 2.0) {
		t.Fatal("device should be reattached after the plug time")
	}
	if got := n1.SlowdownAt(1.0); got != 3 {
		t.Fatalf("slowdown at 1.0 = %g, want 3", got)
	}
	if got := n1.SlowdownAt(0.1); got != 1 {
		t.Fatalf("slowdown before the event = %g, want 1", got)
	}
}

func TestEventKindAndPolicyStrings(t *testing.T) {
	kinds := []EventKind{EventSubmit, EventTaskDone, EventTransfer, EventNodeFailure,
		EventReschedule, EventWorkflowDone, EventDeviceUnplug, EventDevicePlug,
		EventNodeSlowdown, EventVariant, EventKind(99)}
	want := []string{"submit", "task-done", "transfer", "node-failure", "reschedule",
		"workflow-done", "device-unplug", "device-plug", "node-slowdown", "variant", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
	if PolicyHEFT.String() != "heft" || PolicyFIFO.String() != "fifo" {
		t.Fatalf("policy strings = %q/%q", PolicyHEFT.String(), PolicyFIFO.String())
	}
}

func TestFutureDoneAndFailNode(t *testing.T) {
	c := platform.NewCluster(
		platform.NewNode("n0", platform.XeonModel()),
		platform.NewNode("n1", platform.XeonModel()),
	)
	e := NewEngine(c, platform.NewRegistry(), EngineConfig{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.FailNode("ghost", 0); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := e.FailNode("n1", 1e6); err != nil { // far future: harmless
		t.Fatal(err)
	}
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "a", Flops: 1e9}); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(w, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-fut.Done()
	sched, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 1 {
		t.Fatalf("got %d assignments, want 1", len(sched.Assignments))
	}
	e.Shutdown()
}

// TestAdaptiveUnplugThenPlugMidRun drives the full control loop: an
// adaptive engine loses its only programmed accelerator mid-run (queued
// FPGA placements invalidate, tuners degrade) and gets it back (tuners
// reset to their seeds), with workflows completing throughout.
func TestAdaptiveUnplugThenPlugMidRun(t *testing.T) {
	n0 := platform.NewNode("n0", platform.XeonModel(), platform.AlveoU55C())
	n1 := platform.NewNode("n1", platform.XeonModel())
	c := platform.NewCluster(n0, n1)
	reg := platform.NewRegistry()
	bs := platform.Bitstream{
		ID: "bs-ctrl", Kernel: "k", Target: "alveo-u55c",
		Report: hls.Report{LatencyCycle: 1 << 18, II: 1, IterLatency: 8,
			Resources: hls.Resources{LUT: 30000, FF: 40000, DSP: 64, BRAM: 32},
			ClockMHz:  300},
		Config: platform.SystemConfig{Replicas: 2, BusWidthBits: 512, Lanes: 4,
			PackedElements: 4, DoubleBuffered: true, PLMBytes: 1 << 16},
		ElemBits: 32,
	}
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	if _, err := n0.Program(0, bs); err != nil {
		t.Fatal(err)
	}
	var events []Event
	e := NewEngine(c, reg, EngineConfig{
		Adaptive: true,
		Trace:    func(ev Event) { events = append(events, ev) },
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	wf := func() *Workflow {
		w := NewWorkflow()
		if err := w.Submit(TaskSpec{Name: "prep", Flops: 1e9, OutputBytes: 1 << 18}); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"mc0", "mc1"} {
			if err := w.Submit(TaskSpec{Name: name, Deps: []string{"prep"},
				Flops: 2e10, InputBytes: 1 << 18, OutputBytes: 1 << 16,
				NeedsFPGA: true, BitstreamID: bs.ID}); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	run := func() *Schedule {
		fut, err := e.Submit(wf(), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}
	first := run()
	if err := e.UnplugDevice("n0", 0, first.Makespan); err != nil {
		t.Fatal(err)
	}
	if err := e.UnplugDevice("n0", 0, first.Makespan); err != nil { // redundant: no-op
		t.Fatal(err)
	}
	second := run()
	for _, a := range second.Assignments {
		if a.OnFPGA && a.Start > first.Makespan {
			t.Fatalf("post-unplug FPGA placement: %+v", a)
		}
	}
	if err := e.PlugDevice("n0", 0, second.Makespan); err != nil {
		t.Fatal(err)
	}
	third := run()
	onFPGA := 0
	for _, a := range third.Assignments {
		if a.OnFPGA {
			onFPGA++
		}
	}
	if onFPGA == 0 {
		t.Fatal("replugged accelerator should attract offload again")
	}
	if err := e.SetNodeSlowdown("n1", 4, third.Makespan); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	seen := make(map[EventKind]bool)
	for _, ev := range events {
		seen[ev.Kind] = true
	}
	for _, k := range []EventKind{EventDeviceUnplug, EventDevicePlug, EventNodeSlowdown, EventVariant} {
		if !seen[k] {
			t.Fatalf("trace missing %v events", k)
		}
	}
}
