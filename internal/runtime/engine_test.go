package runtime

import (
	"sync"
	"testing"
	"time"

	"everest/internal/platform"
)

func startEngine(t *testing.T, cluster *platform.Cluster, cfg EngineConfig) *Engine {
	t.Helper()
	e := NewEngine(cluster, platform.NewRegistry(), cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineSingleWorkflowRespectsDependencies(t *testing.T) {
	e := startEngine(t, testCluster(3), EngineConfig{Policy: PolicyHEFT})
	w := chainWorkflow(t, 5)
	fut, err := e.Submit(w, SubmitOptions{Name: "chain"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 5 {
		t.Fatalf("got %d assignments, want 5", len(sched.Assignments))
	}
	byTask := sched.ByTask()
	for i := 1; i < 5; i++ {
		prev, cur := byTask[taskName(i-1)], byTask[taskName(i)]
		if cur.Start < prev.End-1e-12 {
			t.Errorf("task %d starts before its dependency ends: %g < %g", i, cur.Start, prev.End)
		}
	}
	if sched.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestEngineEmptyWorkflow(t *testing.T) {
	e := startEngine(t, testCluster(1), EngineConfig{})
	fut, err := e.Submit(NewWorkflow(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil || sched.Makespan != 0 || len(sched.Assignments) != 0 {
		t.Errorf("empty workflow: %+v %v", sched, err)
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	e := NewEngine(testCluster(1), platform.NewRegistry(), EngineConfig{})
	if _, err := e.Submit(nil, SubmitOptions{}); err == nil {
		t.Error("nil workflow must fail")
	}
	// Submissions before Start queue up and run once the engine starts.
	early, err := e.Submit(NewWorkflow(), SubmitOptions{Name: "early"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := early.Wait(); err != nil {
		t.Errorf("pre-start submission must complete: %v", err)
	}
	if err := e.Start(); err == nil {
		t.Error("double start must fail")
	}
	e.Shutdown()
	e.Shutdown() // second shutdown is a no-op
	if _, err := e.Submit(NewWorkflow(), SubmitOptions{}); err == nil {
		t.Error("submit after shutdown must fail")
	}
	empty := NewEngine(platform.NewCluster(), platform.NewRegistry(), EngineConfig{})
	if err := empty.Start(); err == nil {
		t.Error("engine over an empty cluster must refuse to start")
	}
}

func TestEngineConcurrentSubmissions(t *testing.T) {
	const workflows = 16
	e := startEngine(t, testCluster(4), EngineConfig{Policy: PolicyHEFT})
	var wg sync.WaitGroup
	scheds := make([]*Schedule, workflows)
	errs := make([]error, workflows)
	for i := 0; i < workflows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorkflow()
			if err := w.Submit(TaskSpec{Name: "a", Flops: 1e9, OutputBytes: 1 << 20}); err != nil {
				errs[i] = err
				return
			}
			if err := w.Submit(TaskSpec{Name: "b", Deps: []string{"a"},
				Flops: 2e9, InputBytes: 1 << 20}); err != nil {
				errs[i] = err
				return
			}
			fut, err := e.Submit(w, SubmitOptions{Tenant: string(rune('A' + i%4))})
			if err != nil {
				errs[i] = err
				return
			}
			scheds[i], errs[i] = fut.Wait()
		}(i)
	}
	wg.Wait()
	e.Shutdown()
	for i := 0; i < workflows; i++ {
		if errs[i] != nil {
			t.Fatalf("workflow %d: %v", i, errs[i])
		}
		if len(scheds[i].Assignments) != 2 {
			t.Errorf("workflow %d: %d assignments, want 2", i, len(scheds[i].Assignments))
		}
		byTask := scheds[i].ByTask()
		if byTask["b"].Start < byTask["a"].End-1e-12 {
			t.Errorf("workflow %d: dependency violated", i)
		}
	}
}

// TestEngineMultiplexingBeatsSerial is the tentpole property: running N
// workflows through the concurrent engine must finish (in modelled time)
// well before running the same N workflows back-to-back through the serial
// planner.
func TestEngineMultiplexingBeatsSerial(t *testing.T) {
	const workflows = 8
	mkWorkflow := func() *Workflow {
		w := NewWorkflow()
		if err := w.Submit(TaskSpec{Name: "prep", Flops: 2e9, OutputBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		if err := w.Submit(TaskSpec{Name: "compute", Deps: []string{"prep"},
			Flops: 4e10, InputBytes: 1 << 20, OutputBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		if err := w.Submit(TaskSpec{Name: "post", Deps: []string{"compute"},
			Flops: 1e9, InputBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Serial baseline: each workflow planned alone, executed back-to-back.
	serial := 0.0
	s := NewScheduler(testCluster(4), platform.NewRegistry(), PolicyHEFT)
	for i := 0; i < workflows; i++ {
		sched, err := s.Plan(mkWorkflow())
		if err != nil {
			t.Fatal(err)
		}
		serial += sched.Makespan
	}

	e := startEngine(t, testCluster(4), EngineConfig{Policy: PolicyHEFT})
	futs := make([]*Future, workflows)
	for i := 0; i < workflows; i++ {
		fut, err := e.Submit(mkWorkflow(), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	concurrent := 0.0
	for _, fut := range futs {
		sched, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if sched.Makespan > concurrent {
			concurrent = sched.Makespan
		}
	}
	e.Shutdown()
	if concurrent <= 0 {
		t.Fatal("concurrent makespan must be positive")
	}
	if speedup := serial / concurrent; speedup < 2 {
		t.Errorf("multiplexing speedup %.2fx, want >= 2x (serial %.3gs, concurrent %.3gs)",
			speedup, serial, concurrent)
	}
}

func TestEngineFailureRescheduling(t *testing.T) {
	cluster := testCluster(3)
	victim := cluster.Nodes[0].Name
	var mu sync.Mutex
	var events []Event
	e := startEngine(t, cluster, EngineConfig{
		Policy:   PolicyHEFT,
		Failures: []NodeFailure{{Node: victim, AtTime: 0.001}},
		Trace: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	fut, err := e.Submit(chainWorkflow(t, 6), SubmitOptions{Name: "chain"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 6 {
		t.Fatalf("got %d assignments, want 6", len(sched.Assignments))
	}
	restarts := 0
	for _, a := range sched.Assignments {
		if a.Node == victim && a.End > 0.001 {
			t.Errorf("task %s completed on the dead node after its failure", a.Task)
		}
		if a.Restart {
			restarts++
			if a.Start < 0.001 {
				t.Errorf("restarted task %s starts before the failure was observed", a.Task)
			}
		}
	}
	if restarts == 0 {
		t.Error("failure must cause at least one restart")
	}
	sawFailure, sawReschedule := false, false
	mu.Lock()
	for _, ev := range events {
		switch ev.Kind {
		case EventNodeFailure:
			sawFailure = true
		case EventReschedule:
			sawReschedule = true
		}
	}
	mu.Unlock()
	if !sawFailure || !sawReschedule {
		t.Errorf("trace must record failure and reschedule events (failure=%v reschedule=%v)",
			sawFailure, sawReschedule)
	}
}

func TestEngineShutdownDrainsLostBacklog(t *testing.T) {
	// All nodes dead plus a workflow with far more ready tasks than the
	// report channel buffers: the workflow fails as soon as the first loss
	// is observed, and Shutdown must still drain the executors' remaining
	// lost-task reports instead of deadlocking.
	cluster := testCluster(1)
	e := startEngine(t, cluster, EngineConfig{
		Failures: []NodeFailure{{Node: cluster.Nodes[0].Name, AtTime: 0}},
	})
	w := NewWorkflow()
	for i := 0; i < 100; i++ {
		if err := w.Submit(TaskSpec{Name: taskName(i), Flops: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	fut, err := e.Submit(w, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err == nil {
		t.Error("workflow on an all-dead cluster must fail")
	}
	done := make(chan struct{})
	go func() {
		e.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked on the lost-task backlog")
	}
}

func TestEngineRestartClearsStaleFailures(t *testing.T) {
	// A second engine over the same cluster must not inherit the first
	// run's injected node failure.
	cluster := testCluster(2)
	victim := cluster.Nodes[0].Name
	e1 := startEngine(t, cluster, EngineConfig{
		Failures: []NodeFailure{{Node: victim, AtTime: 0.0001}},
	})
	fut, err := e1.Submit(chainWorkflow(t, 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	e1.Shutdown()

	e2 := startEngine(t, cluster, EngineConfig{})
	fut2, err := e2.Submit(chainWorkflow(t, 3), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut2.Wait()
	e2.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sched.Assignments {
		if a.Restart {
			t.Errorf("fresh engine inherited a stale failure: %+v", a)
		}
	}
}

func TestEngineTransfersNotDoubleCountedOnRestart(t *testing.T) {
	// A healthy run and a failure run of the same workflow: the failure run
	// re-places lost tasks, but completed transfer stats must stay in the
	// same ballpark, not double.
	w := func() *Workflow { return forkJoinWorkflow(t, 8) }
	e1 := startEngine(t, testCluster(3), EngineConfig{Policy: PolicyHEFT})
	fut, err := e1.Submit(w(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := fut.Wait()
	e1.Shutdown()
	if err != nil {
		t.Fatal(err)
	}

	cluster := testCluster(3)
	e2 := startEngine(t, cluster, EngineConfig{
		Policy:   PolicyHEFT,
		Failures: []NodeFailure{{Node: cluster.Nodes[0].Name, AtTime: 0.001}},
	})
	fut2, err := e2.Submit(w(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := fut2.Wait()
	e2.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	// One assignment per task in both runs: restarts replace, not append.
	if len(failed.Assignments) != len(clean.Assignments) {
		t.Errorf("failure run recorded %d assignments, clean run %d",
			len(failed.Assignments), len(clean.Assignments))
	}
	// The failure run moves somewhat more data (rescheduled placements may
	// pull deps again) but must not blow up to double-counted territory.
	if failed.MovedBytes > 2*clean.MovedBytes+1<<20 {
		t.Errorf("moved bytes look double-counted: clean %d, failed %d",
			clean.MovedBytes, failed.MovedBytes)
	}
}

func TestEngineAllNodesDeadFailsWorkflow(t *testing.T) {
	cluster := testCluster(1)
	e := startEngine(t, cluster, EngineConfig{
		Failures: []NodeFailure{{Node: cluster.Nodes[0].Name, AtTime: 0}},
	})
	fut, err := e.Submit(chainWorkflow(t, 2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err == nil {
		t.Error("workflow on an all-dead cluster must fail")
	}
	e.Shutdown()
}

func TestEngineFPGAOffload(t *testing.T) {
	cluster := testCluster(2)
	reg := platform.NewRegistry()
	bs := fpgaBitstream()
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Nodes[0].Program(0, bs); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cluster, reg, EngineConfig{Policy: PolicyHEFT})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{
		Name: "mc", Flops: 5e11, InputBytes: 1 << 24, OutputBytes: 1 << 20,
		NeedsFPGA: true, BitstreamID: bs.ID,
	}); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(w, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	a := sched.Assignments[0]
	if !a.OnFPGA || a.Node != cluster.Nodes[0].Name {
		t.Errorf("FPGA task placed wrong: %+v", a)
	}
}

func TestEngineTenantFairness(t *testing.T) {
	// Two tenants submit identical bursts before the engine starts; round-
	// robin draining must not let either tenant finish its whole burst before
	// the other gets started, so their completion times stay comparable.
	const perTenant = 6
	e := NewEngine(testCluster(2), platform.NewRegistry(), EngineConfig{Policy: PolicyHEFT})
	submit := func(tenant string) []*Future {
		var futs []*Future
		for i := 0; i < perTenant; i++ {
			w := NewWorkflow()
			if err := w.Submit(TaskSpec{Name: "work", Flops: 1e10}); err != nil {
				t.Fatal(err)
			}
			fut, err := e.Submit(w, SubmitOptions{Tenant: tenant})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, fut)
		}
		return futs
	}
	futsA := submit("alice")
	futsB := submit("bob")
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	finish := func(futs []*Future) float64 {
		last := 0.0
		for _, f := range futs {
			sched, err := f.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if sched.Makespan > last {
				last = sched.Makespan
			}
		}
		return last
	}
	doneA, doneB := finish(futsA), finish(futsB)
	e.Shutdown()
	ratio := doneB / doneA
	if ratio < 1 {
		ratio = doneA / doneB
	}
	if ratio > 1.5 {
		t.Errorf("tenant completion skew %.2f too high (alice %.3g, bob %.3g)", ratio, doneA, doneB)
	}
}

func TestEngineBatchedTransfers(t *testing.T) {
	// A wide fork-join forces cross-node dependencies; the engine must batch
	// the join's incoming transfers per source node, so the number of
	// recorded transfers stays at most the number of other nodes.
	e := startEngine(t, testCluster(4), EngineConfig{Policy: PolicyHEFT})
	fut, err := e.Submit(forkJoinWorkflow(t, 12), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Transfers == 0 {
		t.Error("cross-node fork-join must move data")
	}
	// 14 tasks, 12 of them feeding one join from at most 3 remote nodes:
	// un-batched accounting would record up to 12 join transfers alone.
	if sched.Transfers > 16 {
		t.Errorf("transfers = %d, batching per source node should keep this small", sched.Transfers)
	}
	if sched.MovedBytes == 0 {
		t.Error("moved bytes must be recorded")
	}
}
