package runtime

import (
	"encoding/json"
	"fmt"

	"everest/internal/platform"
)

// Deployment is the LEXIS-style workflow deployment descriptor (paper §IV):
// which tasks are marked for FPGA offload and which bitstreams the cluster
// must stage before execution.
type Deployment struct {
	Workflow  string            `json:"workflow"`
	Offloaded map[string]string `json:"offloaded"` // task -> bitstream ID
	Nodes     []string          `json:"nodes"`
}

// MarkOffload marks a task for FPGA execution with the given bitstream.
func (d *Deployment) MarkOffload(task, bitstreamID string) {
	if d.Offloaded == nil {
		d.Offloaded = make(map[string]string)
	}
	d.Offloaded[task] = bitstreamID
}

// JSON renders the descriptor (the artifact LEXIS stores).
func (d *Deployment) JSON() (string, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Stage programs every offloaded bitstream onto the first matching device
// of each listed node, returning the total modelled staging time. It also
// rewrites the workflow's task specs to request the FPGA.
func (d *Deployment) Stage(w *Workflow, c *platform.Cluster, reg *platform.Registry) (float64, error) {
	total := 0.0
	for task, bsID := range d.Offloaded {
		spec, ok := w.Get(task)
		if !ok {
			return 0, fmt.Errorf("runtime: deployment references unknown task %q", task)
		}
		bs, err := reg.Get(bsID)
		if err != nil {
			return 0, err
		}
		staged := false
		for _, nodeName := range d.Nodes {
			n := c.FindNode(nodeName)
			if n == nil {
				return 0, fmt.Errorf("runtime: deployment references unknown node %q", nodeName)
			}
			for idx := range n.Devices {
				if dt, err := n.Program(idx, bs); err == nil {
					total += dt
					staged = true
					break
				}
			}
			if staged {
				break
			}
		}
		if !staged {
			return 0, fmt.Errorf("runtime: no device in the deployment can host bitstream %q", bsID)
		}
		spec.NeedsFPGA = true
		spec.BitstreamID = bsID
	}
	return total, nil
}
