package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestInsertAssignmentOutOfOrder is the regression test for replacing the
// finish-time sort.SliceStable over Schedule.Assignments with ordered
// insertion as completions arrive: for any arrival order — including the
// out-of-order completions a multi-node run produces when a slow node
// reports after a fast one — the final schedule must be exactly what the
// old full-slice stable sort by Start produced, ties preserving arrival
// order.
func TestInsertAssignmentOutOfOrder(t *testing.T) {
	t.Run("table", func(t *testing.T) {
		arrivals := []Assignment{
			{Task: "d", Start: 3.0},
			{Task: "a", Start: 1.0}, // arrives after a later start: must insert before d
			{Task: "c", Start: 3.0}, // ties with d: arrival order d,c must survive
			{Task: "b", Start: 1.0}, // ties with a: arrival order a,b must survive
			{Task: "e", Start: 0.5}, // earliest last: must land first
		}
		st := &wfState{sched: &Schedule{}}
		for _, a := range arrivals {
			st.insertAssignment(a)
		}
		want := []string{"e", "a", "b", "d", "c"}
		for i, a := range st.sched.Assignments {
			if a.Task != want[i] {
				t.Fatalf("position %d = %q, want %q (full order %v)",
					i, a.Task, want[i], taskOrder(st.sched.Assignments))
			}
		}
	})

	t.Run("randomized against stable sort", func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		for round := 0; round < 50; round++ {
			n := 1 + rng.Intn(40)
			st := &wfState{sched: &Schedule{}}
			var ref []Assignment
			for i := 0; i < n; i++ {
				a := Assignment{
					Task:  fmt.Sprintf("t%02d", i),
					Node:  fmt.Sprintf("n%d", rng.Intn(3)),
					Start: float64(rng.Intn(5)), // few buckets => many Start ties
					End:   float64(rng.Intn(5)) + 1,
				}
				st.insertAssignment(a)
				ref = append(ref, a)
			}
			sort.SliceStable(ref, func(i, j int) bool { return ref[i].Start < ref[j].Start })
			if len(st.sched.Assignments) != len(ref) {
				t.Fatalf("round %d: %d assignments, want %d", round, len(st.sched.Assignments), len(ref))
			}
			for i := range ref {
				if st.sched.Assignments[i] != ref[i] {
					t.Fatalf("round %d diverges from stable sort at %d:\n got %v\nwant %v",
						round, i, taskOrder(st.sched.Assignments), taskOrder(ref))
				}
			}
		}
	})
}

func taskOrder(as []Assignment) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = fmt.Sprintf("%s@%g", a.Task, a.Start)
	}
	return out
}
