// Package runtime implements the EVEREST resource manager (paper §VI-A):
// a Dask-like task-graph API over the simulated heterogeneous cluster, a
// cost-aware list scheduler that (1) respects dependencies and resource
// requests, (2) load-balances, (3) inserts inter-node data transfers, and
// (4) monitors the cluster and reschedules tasks when a node fails.
//
// Two execution layers share the Workflow/TaskSpec API. Scheduler is the
// serial planner: it maps one workflow ahead of time and returns its
// Schedule. Engine is the concurrent engine: an event-driven dispatcher
// with per-node work queues and one executor goroutine per node that
// multiplexes many workflows from many tenants onto the same cluster, with
// batched inter-node transfers, round-robin tenant fairness, and reactive
// rescheduling when a node fails mid-run.
//
// The public API mirrors the paper's description: applications submit tasks
// with minimal modification ("Dask-like API ... extended with
// EVEREST-specific features, mainly to specify the resource requests and the
// possibility of kernel fine-tuning").
package runtime

import (
	"fmt"
	"sort"

	"everest/internal/autotuner"
	"everest/internal/dataset"
	"everest/internal/platform"
)

// TaskSpec describes one workflow task and its EVEREST resource request.
type TaskSpec struct {
	Name string
	Deps []string

	// Software cost model.
	Flops       float64
	InputBytes  int64
	OutputBytes int64
	Cores       int

	// Named data plane (dataset tier). Reads and Writes name the dataset
	// partitions the task consumes and produces. On this path
	// InputBytes/OutputBytes are derived from the refs at Submit time
	// (declared bytes, when nonzero, win — the legacy hand-declared path
	// keeps working unchanged); placement-aware tiers additionally use
	// the refs to price data locality and publish outputs.
	Reads  []dataset.Ref
	Writes []dataset.Ref

	// EVEREST extension: FPGA offload request. When BitstreamID is set and
	// a node with a programmed device is available, the task runs there.
	NeedsFPGA   bool
	BitstreamID string

	// Knobs forwards fine-tuning parameters to the autotuner layer.
	Knobs map[string]string
}

// ReadBytes returns the task's input size: declared InputBytes when
// nonzero, else the sum of its Reads refs (the dataset path).
func (t *TaskSpec) ReadBytes() int64 {
	if t.InputBytes != 0 || len(t.Reads) == 0 {
		return t.InputBytes
	}
	return dataset.Sum(t.Reads)
}

// WriteBytes returns the task's output size: declared OutputBytes when
// nonzero, else the sum of its Writes refs.
func (t *TaskSpec) WriteBytes() int64 {
	if t.OutputBytes != 0 || len(t.Writes) == 0 {
		return t.OutputBytes
	}
	return dataset.Sum(t.Writes)
}

// TotalBytes returns the bytes the task moves through memory (input plus
// output) — the quantity every cost model prices. Dataset-declared specs
// resolve through their refs, so the sum is correct before and after
// Submit normalizes the byte fields.
func (t *TaskSpec) TotalBytes() int64 { return t.ReadBytes() + t.WriteBytes() }

// Workflow is a DAG of tasks (the Dask graph).
type Workflow struct {
	tasks map[string]*TaskSpec
	order []string

	// variants, when set, are compiler-derived operating points that seed
	// this workflow's variant tuner in adaptive mode (SetVariants).
	variants []autotuner.Variant
}

// NewWorkflow returns an empty workflow.
func NewWorkflow() *Workflow {
	return &Workflow{tasks: make(map[string]*TaskSpec)}
}

// Submit adds a task; dependencies must already be submitted.
func (w *Workflow) Submit(spec TaskSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("runtime: task needs a name")
	}
	if _, dup := w.tasks[spec.Name]; dup {
		return fmt.Errorf("runtime: duplicate task %q", spec.Name)
	}
	for _, d := range spec.Deps {
		if _, ok := w.tasks[d]; !ok {
			return fmt.Errorf("runtime: task %q depends on unknown task %q", spec.Name, d)
		}
	}
	cp := spec
	// Dataset path: derive the modelled byte fields from the refs so every
	// downstream consumer (planner transfers, engine, cost models, bounds)
	// sees the same numbers whether bytes were declared or named.
	cp.InputBytes = cp.ReadBytes()
	cp.OutputBytes = cp.WriteBytes()
	w.tasks[spec.Name] = &cp
	w.order = append(w.order, spec.Name)
	return nil
}

// Tasks returns task names in submission order.
func (w *Workflow) Tasks() []string { return append([]string(nil), w.order...) }

// Get returns a task spec.
func (w *Workflow) Get(name string) (*TaskSpec, bool) {
	t, ok := w.tasks[name]
	return t, ok
}

// Len returns the number of tasks.
func (w *Workflow) Len() int { return len(w.order) }

// Range visits every task spec in submission order until fn returns false.
// Unlike Tasks()+Get it allocates nothing, so per-submission scans (the
// fleet router's bitstream-needs pass) stay off the allocator; fn must not
// retain or mutate the spec.
func (w *Workflow) Range(fn func(t *TaskSpec) bool) {
	for _, name := range w.order {
		if !fn(w.tasks[name]) {
			return
		}
	}
}

// SetVariants attaches compiler-derived operating points (expected latency
// per implementation variant) to the workflow. In adaptive mode the engine
// seeds the workflow's autotuner from them instead of re-deriving seeds
// from the task specs — the compiled path of the SDK loop, where every
// expected latency traces back to the HLS schedule and the CPU cost model.
func (w *Workflow) SetVariants(vs []autotuner.Variant) {
	w.variants = append([]autotuner.Variant(nil), vs...)
}

// Variants returns the attached operating points (nil when none).
func (w *Workflow) Variants() []autotuner.Variant {
	return append([]autotuner.Variant(nil), w.variants...)
}

// Policy selects the scheduling strategy.
type Policy int

// Scheduling policies.
const (
	// PolicyHEFT ranks tasks by upward rank and picks the node with the
	// earliest finish time including transfer costs.
	PolicyHEFT Policy = iota
	// PolicyFIFO assigns tasks in submission order to the first free node
	// (the E6 baseline).
	PolicyFIFO
)

func (p Policy) String() string {
	if p == PolicyFIFO {
		return "fifo"
	}
	return "heft"
}

// Assignment records one scheduled task execution.
type Assignment struct {
	Task    string
	Node    string
	Start   float64
	End     float64
	OnFPGA  bool
	Restart bool // true if this run replaces one lost to a node failure
}

// Schedule is the result of planning a workflow.
type Schedule struct {
	Assignments []Assignment
	Makespan    float64
	Transfers   int   // inter-node dependency transfers
	MovedBytes  int64 // total bytes moved between nodes
	Policy      Policy
	Adapt       AdaptStats // adaptation and recovery activity (engine runs)
}

// AdaptStats summarizes one workflow's adaptation activity under the
// concurrent engine: which implementation variants its tasks ran as
// (adaptive mode only — static runs never select variants), how many
// placements had to be redone after environment events or failures, and
// how many FPGA placements executed in software because the device was
// gone by the time they ran (static runs under faults pay these too).
type AdaptStats struct {
	VariantCounts map[string]int // completed tasks per selected variant
	Reschedules   int            // placements invalidated and redone
	Fallbacks     int            // FPGA placements that executed on CPU
}

// ByTask returns the (final) assignment of each task.
func (s *Schedule) ByTask() map[string]Assignment {
	m := make(map[string]Assignment, len(s.Assignments))
	for _, a := range s.Assignments {
		m[a.Task] = a
	}
	return m
}

// NodeFailure injects a node failure at a modelled time (E6 failure test).
type NodeFailure struct {
	Node   string
	AtTime float64
}

// Scheduler plans workflows onto a cluster.
type Scheduler struct {
	Cluster  *platform.Cluster
	Registry *platform.Registry
	Policy   Policy
	Failures []NodeFailure
}

// NewScheduler builds a scheduler.
func NewScheduler(c *platform.Cluster, reg *platform.Registry, p Policy) *Scheduler {
	return &Scheduler{Cluster: c, Registry: reg, Policy: p}
}

// taskCost models one task's execution time on a node.
func (s *Scheduler) taskCost(t *TaskSpec, n *platform.Node) (float64, bool) {
	cost, onFPGA, _ := costOn(t, n)
	return cost, onFPGA
}

// costOn models task t's execution time on node n with the design-time
// model: nominal CPU speed, and FPGA offload assumed reachable whenever the
// bitstream is programmed (attachment faults are invisible to it). Shared
// by the serial planner and the static engine's placement estimates; live
// execution costs come from costLive (adaptive.go).
func costOn(t *TaskSpec, n *platform.Node) (cost float64, onFPGA bool, devIdx int) {
	if c, idx, ok := fpgaCostOn(t, n, designTime); ok {
		return c, true, idx
	}
	return n.RunCPU(t.Flops, t.TotalBytes(), t.Cores), false, -1
}

// Plan schedules the workflow and returns the schedule. The plan is
// deterministic: ties break on node order, then task submission order.
func (s *Scheduler) Plan(w *Workflow) (*Schedule, error) {
	if w.Len() == 0 {
		return &Schedule{Policy: s.Policy}, nil
	}
	order, err := s.taskOrder(w)
	if err != nil {
		return nil, err
	}

	failAt := make(map[string]float64)
	for _, f := range s.Failures {
		failAt[f.Node] = f.AtTime
	}

	sched := &Schedule{Policy: s.Policy}
	nodeFree := make(map[string]float64) // node -> earliest idle time
	taskDone := make(map[string]float64) // task -> completion time
	taskNode := make(map[string]string)  // task -> node holding its output
	alive := func(node string, until float64) bool {
		t, failed := failAt[node]
		return !failed || until <= t
	}

	for _, name := range order {
		task := w.tasks[name]
		bestNode := ""
		bestEnd := 0.0
		bestStart := 0.0
		bestFPGA := false
		bestBytes := int64(0)
		bestTransfers := 0

		for _, n := range s.Cluster.Nodes {
			// Ready time: all deps done plus any transfer of their outputs.
			ready := nodeFree[n.Name]
			var moved int64
			transfers := 0
			for _, d := range task.Deps {
				arrive := taskDone[d]
				if taskNode[d] != n.Name {
					dep := w.tasks[d]
					arrive += s.Cluster.TransferSeconds(taskNode[d], n.Name, dep.OutputBytes)
					moved += dep.OutputBytes
					transfers++
				}
				if arrive > ready {
					ready = arrive
				}
			}
			cost, onFPGA := s.taskCost(task, n)
			end := ready + cost
			if !alive(n.Name, end) {
				continue // node dies before completing this task
			}
			better := bestNode == "" || end < bestEnd ||
				(end == bestEnd && onFPGA && !bestFPGA)
			if s.Policy == PolicyFIFO {
				// FIFO: first node that is idle at the dep-ready time wins;
				// approximated by earliest start rather than earliest end.
				better = bestNode == "" || ready < bestStart
			}
			if better {
				bestNode, bestEnd, bestStart = n.Name, end, ready
				bestFPGA, bestBytes, bestTransfers = onFPGA, moved, transfers
			}
		}
		if bestNode == "" {
			return nil, fmt.Errorf("runtime: no alive node can run task %q", name)
		}
		sched.Assignments = append(sched.Assignments, Assignment{
			Task: name, Node: bestNode, Start: bestStart, End: bestEnd, OnFPGA: bestFPGA,
		})
		nodeFree[bestNode] = bestEnd
		taskDone[name] = bestEnd
		taskNode[name] = bestNode
		sched.Transfers += bestTransfers
		sched.MovedBytes += bestBytes
		if bestEnd > sched.Makespan {
			sched.Makespan = bestEnd
		}
	}
	return sched, nil
}

// taskOrder returns tasks in scheduling priority order: HEFT uses upward
// rank (critical path to exit), FIFO uses submission order. Both respect
// dependencies.
func (s *Scheduler) taskOrder(w *Workflow) ([]string, error) {
	// Topological check (submission order already guarantees acyclicity
	// because deps must pre-exist, but verify defensively).
	indeg := make(map[string]int)
	children := make(map[string][]string)
	for _, name := range w.order {
		t := w.tasks[name]
		indeg[name] = len(t.Deps)
		for _, d := range t.Deps {
			children[d] = append(children[d], name)
		}
	}
	if s.Policy == PolicyFIFO {
		return append([]string(nil), w.order...), nil
	}

	// Upward rank with a representative node cost.
	ref := s.Cluster.Nodes[0]
	rank := make(map[string]float64)
	var compute func(name string) float64
	compute = func(name string) float64 {
		if r, ok := rank[name]; ok {
			return r
		}
		t := w.tasks[name]
		cost, _ := s.taskCost(t, ref)
		best := 0.0
		for _, c := range children[name] {
			if r := compute(c); r > best {
				best = r
			}
		}
		rank[name] = cost + best
		return rank[name]
	}
	for _, name := range w.order {
		compute(name)
	}

	// Priority order: higher rank first, but never before dependencies.
	names := append([]string(nil), w.order...)
	sort.SliceStable(names, func(i, j int) bool { return rank[names[i]] > rank[names[j]] })
	var out []string
	done := make(map[string]bool)
	remaining := names
	for len(remaining) > 0 {
		progressed := false
		var next []string
		for _, name := range remaining {
			readyNow := true
			for _, d := range w.tasks[name].Deps {
				if !done[d] {
					readyNow = false
					break
				}
			}
			if readyNow {
				out = append(out, name)
				done[name] = true
				progressed = true
			} else {
				next = append(next, name)
			}
		}
		if !progressed {
			return nil, fmt.Errorf("runtime: dependency cycle detected")
		}
		remaining = next
	}
	return out, nil
}

// PlanWithRecovery plans the workflow, then replays the injected node
// failures: any task that would finish after its node's failure time is
// rescheduled onto the surviving nodes (its restart is recorded). Completed
// outputs survive failures (the runtime checkpoints task outputs to the
// shared data layer on completion).
func (s *Scheduler) PlanWithRecovery(w *Workflow) (*Schedule, error) {
	if len(s.Failures) == 0 {
		return s.Plan(w)
	}
	// First pass without failures to find which tasks are hit.
	clean := *s
	clean.Failures = nil
	base, err := clean.Plan(w)
	if err != nil {
		return nil, err
	}
	failAt := make(map[string]float64)
	for _, f := range s.Failures {
		failAt[f.Node] = f.AtTime
	}
	hit := make(map[string]bool)
	for _, a := range base.Assignments {
		if t, failed := failAt[a.Node]; failed && a.End > t {
			hit[a.Task] = true
		}
	}
	if len(hit) == 0 {
		return base, nil
	}
	// Second pass with failures active plans the hit tasks (and everything
	// after them) away from dead nodes.
	re, err := s.Plan(w)
	if err != nil {
		return nil, err
	}
	for i := range re.Assignments {
		if hit[re.Assignments[i].Task] {
			re.Assignments[i].Restart = true
		}
	}
	return re, nil
}

// LoadImbalance returns the ratio busiest/least-busy node time in the
// schedule across nodes that received work (1.0 = perfectly balanced).
func (s *Schedule) LoadImbalance() float64 {
	busy := make(map[string]float64)
	for _, a := range s.Assignments {
		busy[a.Node] += a.End - a.Start
	}
	if len(busy) == 0 {
		return 1
	}
	min, max := -1.0, 0.0
	for _, b := range busy {
		if min < 0 || b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min <= 0 {
		return max
	}
	return max / min
}
