package runtime

import (
	"testing"

	"everest/internal/platform"
)

func TestEngineStatsLifecycle(t *testing.T) {
	c := platform.NewCluster(
		platform.NewNode("n0", platform.XeonModel(), platform.AlveoU55C()),
		platform.NewNode("n1", platform.XeonModel()),
	)
	e := NewEngine(c, platform.NewRegistry(), EngineConfig{})

	st := e.Stats()
	if st.Submitted != 0 || st.Active != 0 {
		t.Fatalf("pre-start stats should be zero, got %+v", st)
	}
	if st.OnlineDevices != 1 {
		t.Fatalf("online devices = %d, want 1", st.OnlineDevices)
	}
	if st.ProgrammedOnline != 0 {
		t.Fatalf("programmed devices = %d, want 0 (nothing staged)", st.ProgrammedOnline)
	}

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "a", Flops: 1e9, OutputBytes: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(TaskSpec{Name: "b", Deps: []string{"a"}, Flops: 1e9}); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(w, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()

	st = e.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("submitted/completed/failed = %d/%d/%d, want 1/1/0",
			st.Submitted, st.Completed, st.Failed)
	}
	if st.Active != 0 || st.ReadyTasks != 0 || st.PendingTasks != 0 {
		t.Fatalf("drained engine should be idle, got %+v", st)
	}
	if st.Backlog <= 0 {
		t.Fatalf("backlog frontier should advance past served work, got %g", st.Backlog)
	}
}

func TestEngineStatsCountsFailures(t *testing.T) {
	c := platform.NewCluster(platform.NewNode("n0", platform.XeonModel()))
	e := NewEngine(c, platform.NewRegistry(), EngineConfig{
		Failures: []NodeFailure{{Node: "n0", AtTime: 0}},
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "a", Flops: 1e9}); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(w, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err == nil {
		t.Fatal("workflow on an all-dead cluster should fail")
	}
	e.Shutdown()
	st := e.Stats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("failed/completed = %d/%d, want 1/0", st.Failed, st.Completed)
	}
	if st.OnlineDevices != 0 {
		t.Fatalf("failed node's devices should not count online, got %d", st.OnlineDevices)
	}
}
