package runtime

import (
	"fmt"
	"sync"

	"everest/internal/autotuner"
	"everest/internal/netsim"
	"everest/internal/platform"
)

// This file implements the concurrent half of the resource manager: an
// event-driven engine that multiplexes many workflows (tenants) onto one
// simulated cluster. The serial Scheduler in runtime.go plans a single
// workflow ahead of time; the Engine executes many of them online, with
// per-node work queues, batched inter-node transfers, and reactive
// rescheduling when a node fails mid-run. All time is modelled seconds
// (never wall clock).
//
// The event core is deterministic and allocation-free on its steady-state
// path. One dispatcher goroutine owns every piece of scheduling state;
// node executions happen inline on it, ordered by a 4-ary min-heap over
// the per-node queue heads keyed by modelled start time with a total
// tie-break (time, workflow id, task name, node index). Because no
// cross-goroutine report channel exists, the observation order feeding the
// monitors and tuners — and with it every trace stream — is a pure
// function of the submission order, byte-identical across GOMAXPROCS.
// Workflow records are pooled (sync.Pool) and index-based: task ids are
// dense integers into flat spec/dependency arrays, so the hot path does no
// map-by-name lookups and no per-event allocation. Concurrent submitters
// remain supported (their arrival interleaving is inherently racy, as
// before); one-at-a-time driving — the fleet regime — is exactly
// reproducible.

// EventKind classifies engine trace events.
type EventKind int

// Engine trace event kinds.
const (
	// EventSubmit fires when a workflow enters the engine.
	EventSubmit EventKind = iota
	// EventTaskDone fires when a task completes on its node.
	EventTaskDone
	// EventTransfer fires once per batched inter-node dependency transfer.
	EventTransfer
	// EventNodeFailure fires the first time the engine observes a node death.
	EventNodeFailure
	// EventReschedule fires when a task lost to a failure is re-queued.
	EventReschedule
	// EventWorkflowDone fires when the last task of a workflow completes.
	EventWorkflowDone
	// EventDeviceUnplug fires when an accelerator is detached from a node
	// (SR-IOV VF unplug surfaced through the engine control API).
	EventDeviceUnplug
	// EventDevicePlug fires when a detached accelerator comes back.
	EventDevicePlug
	// EventNodeSlowdown fires when a node's load factor changes.
	EventNodeSlowdown
	// EventVariant fires on each adaptive placement; Detail names the
	// implementation variant the tuner selected.
	EventVariant
)

func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventTaskDone:
		return "task-done"
	case EventTransfer:
		return "transfer"
	case EventNodeFailure:
		return "node-failure"
	case EventReschedule:
		return "reschedule"
	case EventWorkflowDone:
		return "workflow-done"
	case EventDeviceUnplug:
		return "device-unplug"
	case EventDevicePlug:
		return "device-plug"
	case EventNodeSlowdown:
		return "node-slowdown"
	case EventVariant:
		return "variant"
	}
	return "unknown"
}

// Event is one engine trace record. Trace callbacks run on the dispatcher
// goroutine, so they observe events in a consistent order and need no
// locking of their own.
type Event struct {
	Kind     EventKind
	Workflow string
	Tenant   string
	Task     string
	Node     string
	Time     float64 // modelled seconds
	Detail   string  // event-specific: variant name, device, slowdown factor
}

// EngineConfig configures a concurrent engine.
type EngineConfig struct {
	// Policy selects node placement: PolicyHEFT picks the earliest modelled
	// finish time, PolicyFIFO the earliest modelled start time.
	Policy Policy
	// Failures are node deaths injected at engine start. The dispatcher has
	// no advance knowledge of them: tasks are dispatched normally, lost when
	// the node dies under them, and rescheduled onto the survivors.
	Failures []NodeFailure
	// Events are environment changes (unplug/plug, slowdown) scripted at
	// start as modelled-time condition timelines, so executions price them
	// deterministically. The static engine's placement ignores them (its
	// estimates are design-time); the adaptive engine sees their latest
	// state through the live checks.
	Events []EnvEvent
	// Trace, when set, receives every engine event (dispatcher goroutine).
	Trace func(Event)
	// Adaptive closes the autotuner→engine→virt loop: every placement
	// consults a per-workflow variant tuner and the node monitors instead of
	// the design-time cost model, and hot-plug events invalidate queued
	// placements (see adaptive.go).
	Adaptive bool
	// Monitor collects per-node observations; the engine creates its own
	// when nil. Sharing one lets callers read node health after a run.
	Monitor *platform.Monitor
	// Net, when set, prices inter-node dependency transfers over the
	// packetization-aware cloudFPGA network stack (netsim.Stack: per-MTU
	// framing overhead, one-way stack latency, ack derating) instead of the
	// cluster's flat link model. Small payloads become latency-bound and
	// large ones bandwidth-bound, which is what makes batched transfers
	// between variant placements worth modelling.
	Net *netsim.Stack
}

// Future is the handle returned for one workflow submission. Wait blocks
// until the workflow drains and returns its realized schedule.
type Future struct {
	done chan struct{}

	// Written once by the dispatcher before close(done).
	sched *Schedule
	err   error

	// Immutable submission metadata.
	Name   string
	Tenant string
}

// Wait blocks until the workflow completes and returns its schedule.
func (f *Future) Wait() (*Schedule, error) {
	<-f.done
	return f.sched, f.err
}

// Done returns a channel closed when the workflow has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// SubmitOptions name a submission and its tenant for fairness accounting.
type SubmitOptions struct {
	Name   string // workflow name (defaults to wf<N>)
	Tenant string // fairness domain (defaults to "default")
}

// EngineStats is a point-in-time snapshot of one engine's serving state —
// the per-engine export a federation tier (internal/fleet) reads to judge a
// site's queue depth and accelerator capacity before routing work to it.
// Counter fields are maintained by the dispatcher goroutine and published
// after every event it processes; device fields are computed live from the
// cluster at snapshot time.
type EngineStats struct {
	Submitted int // workflows the dispatcher has accepted
	Completed int // workflows drained successfully
	Failed    int // workflows drained with an error
	Active    int // workflows in flight
	// ReadyTasks counts tasks sitting in the tenant fairness queues,
	// dependency-ready but not yet placed on a node.
	ReadyTasks int
	// PendingTasks counts unfinished tasks across all active workflows
	// (ready, queued on nodes, and still dependency-blocked).
	PendingTasks int
	// Backlog is the modelled frontier: the latest estimated earliest-idle
	// time across nodes — how far into modelled time the engine's accepted
	// work already reaches.
	Backlog float64
	// OnlineDevices counts attached accelerator devices on alive nodes;
	// ProgrammedOnline counts the subset carrying a bitstream (the capacity
	// the fpga variant can actually reach).
	OnlineDevices    int
	ProgrammedOnline int
}

// Engine executes many workflows concurrently over a simulated cluster.
type Engine struct {
	cluster *platform.Cluster
	reg     *platform.Registry
	cfg     EngineConfig

	// Node index tables, built at Start: the dispatcher addresses nodes by
	// dense integer index, never by name.
	nodes   []*platform.Node
	nodeIdx map[string]int
	queues  []*workQueue // per-node FIFO, indexed like nodes

	submitCh chan *wfState
	doneCh   chan struct{} // closed when the dispatcher exits

	statsMu sync.Mutex
	stats   EngineStats // dispatcher-published snapshot (counter fields)

	// Environment events (plug/unplug, slowdown) arrive through an
	// unbounded ordered queue: sendCtrl must never block, because control
	// calls are legal from the dispatcher's own trace callbacks (fault
	// scripts) and from hot-plug subscriber goroutines. ctrlSig (capacity
	// 1) wakes the dispatcher.
	ctrlMu  sync.Mutex
	ctrlQ   []ctrlMsg
	ctrlSig chan struct{}

	monitor *platform.Monitor

	mu      sync.Mutex
	started bool
	closed  bool
	nextID  int
	subWG   sync.WaitGroup // submissions in flight toward submitCh
}

// NewEngine builds an engine over a cluster and bitstream registry.
func NewEngine(c *platform.Cluster, reg *platform.Registry, cfg EngineConfig) *Engine {
	mon := cfg.Monitor
	if mon == nil {
		mon = platform.NewMonitor(c)
	}
	return &Engine{
		cluster:  c,
		reg:      reg,
		cfg:      cfg,
		monitor:  mon,
		submitCh: make(chan *wfState, 64),
		ctrlSig:  make(chan struct{}, 1),
		doneCh:   make(chan struct{}),
	}
}

// Monitor returns the engine's per-node observation layer.
func (e *Engine) Monitor() *platform.Monitor { return e.monitor }

// Stats returns a snapshot of the engine's serving state. The counter
// fields reflect the dispatcher's view as of the last event it processed;
// the device fields are computed from the cluster at call time. Safe to
// call from any goroutine, before Start, and after Shutdown.
func (e *Engine) Stats() EngineStats {
	e.statsMu.Lock()
	st := e.stats
	e.statsMu.Unlock()
	for _, n := range e.cluster.Nodes {
		if _, failed := n.FailedAt(); failed {
			continue
		}
		for idx := range n.Devices {
			if !n.DeviceOnline(idx) {
				continue
			}
			st.OnlineDevices++
			if _, ok := n.Programmed(idx); ok {
				st.ProgrammedOnline++
			}
		}
	}
	return st
}

// publishStats copies the dispatcher's incrementally maintained counters
// into the snapshot Stats() serves. Called by the dispatcher after each
// processed event, so single-writer and O(1); the mutex only orders it
// against readers.
func (e *Engine) publishStats(ds *dispatchState) {
	st := EngineStats{
		Submitted:    ds.submitted,
		Completed:    ds.completed,
		Failed:       ds.failed,
		Active:       len(ds.active),
		ReadyTasks:   ds.readyCount,
		PendingTasks: ds.pendingTotal,
		Backlog:      ds.backlog,
	}
	e.statsMu.Lock()
	e.stats = st
	e.statsMu.Unlock()
}

// raiseBacklog tracks the modelled frontier as nodeFree entries advance.
func (ds *dispatchState) raiseBacklog(t float64) {
	if t > ds.backlog {
		ds.backlog = t
	}
}

// Start builds the node index tables and spawns the dispatcher loop. It
// takes ownership of the cluster: stale failure state and device claims
// left by a previous engine run are cleared before cfg.Failures are
// applied.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("runtime: engine already started")
	}
	if len(e.cluster.Nodes) == 0 {
		return fmt.Errorf("runtime: engine needs at least one node")
	}
	e.started = true
	for _, n := range e.cluster.Nodes {
		n.Heal()
		n.ResetDeviceClaims()
		n.ResetCondition()
	}
	e.monitor.Reset() // stale load evidence dies with the previous run
	// Start is the ownership boundary: ResetCondition above wiped attachment
	// and load faults, so environment events queued before Start are stale
	// and must not degrade tuners for devices that are back online.
	e.takeCtrl()
	select {
	case <-e.ctrlSig:
	default:
	}
	for _, f := range e.cfg.Failures {
		if n := e.cluster.FindNode(f.Node); n != nil {
			n.Fail(f.AtTime)
		}
	}
	e.applyEnvEvents()
	e.nodes = e.cluster.Nodes
	e.nodeIdx = make(map[string]int, len(e.nodes))
	e.queues = make([]*workQueue, len(e.nodes))
	for i, n := range e.nodes {
		e.nodeIdx[n.Name] = i
		// Queues sized from the cluster: a node rarely holds more than a few
		// in-flight placements per peer node feeding it.
		e.queues[i] = newWorkQueueCap(4 * len(e.nodes))
	}
	go e.dispatch()
	return nil
}

// Submit hands a workflow to the engine and returns its result future. The
// workflow must not be mutated after submission. Submissions made before
// Start queue up and are placed together — fairly across tenants — when the
// engine starts.
func (e *Engine) Submit(w *Workflow, opt SubmitOptions) (*Future, error) {
	if w == nil {
		return nil, fmt.Errorf("runtime: nil workflow")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("runtime: engine shut down")
	}
	e.nextID++
	id := e.nextID
	e.subWG.Add(1)
	e.mu.Unlock()

	name := opt.Name
	if name == "" {
		name = fmt.Sprintf("wf%d", id)
	}
	tenant := opt.Tenant
	if tenant == "" {
		tenant = "default"
	}
	fut := &Future{done: make(chan struct{}), Name: name, Tenant: tenant}
	st := newWFState(w, name, tenant, fut)
	// st belongs to the dispatcher once sent — it may finish and recycle it
	// before this returns, so only the future may be touched afterwards.
	e.submitCh <- st
	e.subWG.Done()
	return fut, nil
}

// Shutdown waits for every submitted workflow to drain, then stops the
// dispatcher. It is safe to call once.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if !e.started || e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.subWG.Wait() // no more sends into submitCh
	close(e.submitCh)
	<-e.doneCh
}

// FailNode injects a node failure while the engine runs (best-effort: tasks
// that already completed in modelled time are unaffected). Prefer
// EngineConfig.Failures for deterministic experiments.
func (e *Engine) FailNode(name string, at float64) error {
	n := e.cluster.FindNode(name)
	if n == nil {
		return fmt.Errorf("runtime: unknown node %q", name)
	}
	n.Fail(at)
	return nil
}

// ---------------------------------------------------------------------------
// per-workflow bookkeeping

// wfState is the engine's per-workflow record. Tasks are identified by
// their dense submission index; every per-task attribute lives in a flat
// array indexed by it, and the dependency graph is a pair of flattened
// adjacency lists (CSR layout). Records are pooled: a state is recycled
// once the workflow has finished AND no queued request or ready item still
// references it (inflight/queuedRefs), so a stale reference can never
// alias a reused record.
type wfState struct {
	name   string
	tenant string

	specs     []TaskSpec // snapshot, submission order (index = task id)
	remaining []int32    // task -> unfinished dep count
	doneAt    []float64  // task -> completion time
	locAt     []int32    // task -> node index holding its output (-1 = none)

	// CSR adjacency: deps of task i are depList[depOff[i]:depOff[i+1]];
	// dependents (children) likewise. Children are stored in submission
	// order — that order decides how siblings enter the ready queues when
	// their parent completes, which placement determinism relies on.
	depOff    []int32
	depList   []int32
	childOff  []int32
	childList []int32

	pending    int // tasks not yet completed
	inflight   int // requests placed on node queues, not yet reported
	queuedRefs int // ready items in tenant queues referencing this state
	finished   bool
	tq         int // tenant queue index (dispatcher-assigned)

	// tuner is the per-workflow mARGOt instance (adaptive mode only).
	tuner *autotuner.Tuner
	// variants are compiler-derived tuner seeds snapshotted at submission
	// (Workflow.SetVariants); empty means the engine derives its own.
	variants []autotuner.Variant

	sched *Schedule
	fut   *Future

	// nameIdx resolves dependency names to indices at submission; cleared
	// and reused across the pool.
	nameIdx map[string]int32
	// scratch is the CSR fill cursor, reused across the pool.
	scratch []int32
}

var wfPool = sync.Pool{New: func() any { return new(wfState) }}

func newWFState(w *Workflow, name, tenant string, fut *Future) *wfState {
	st := wfPool.Get().(*wfState)
	n := w.Len()
	st.name, st.tenant = name, tenant
	st.pending = n
	st.inflight, st.queuedRefs = 0, 0
	st.finished = false
	st.tq = 0
	st.variants = w.Variants()
	st.sched = &Schedule{Assignments: make([]Assignment, 0, n)}
	st.fut = fut

	st.specs = growSpecs(st.specs, n)
	st.remaining = growI32(st.remaining, n)
	st.doneAt = growF64(st.doneAt, n)
	st.locAt = growI32(st.locAt, n)
	st.depOff = growI32(st.depOff, n+1)
	st.childOff = growI32(st.childOff, n+1)
	st.scratch = growI32(st.scratch, n)
	if st.nameIdx == nil {
		st.nameIdx = make(map[string]int32, n)
	} else {
		clear(st.nameIdx)
	}

	// Snapshot specs so callers mutating the workflow later cannot race the
	// engine. Iterate in submission order, not map order: index assignment
	// and the children lists must not vary run to run.
	deps := 0
	for i, taskName := range w.order {
		t := w.tasks[taskName]
		st.specs[i] = *t
		st.nameIdx[taskName] = int32(i)
		st.remaining[i] = int32(len(t.Deps))
		st.doneAt[i] = 0
		st.locAt[i] = -1
		st.childOff[i] = 0
		deps += len(t.Deps)
	}
	st.depList = growI32(st.depList, deps)
	st.childList = growI32(st.childList, deps)

	// Pass 1: dep indices + per-parent child counts.
	off := int32(0)
	for i := 0; i < n; i++ {
		st.depOff[i] = off
		for _, d := range st.specs[i].Deps {
			di := st.nameIdx[d]
			st.depList[off] = di
			st.childOff[di]++
			off++
		}
	}
	st.depOff[n] = off
	// Pass 2: prefix the child counts into offsets, then fill in submission
	// order so each parent's children stay submission-ordered.
	sum := int32(0)
	for i := 0; i < n; i++ {
		cnt := st.childOff[i]
		st.childOff[i] = sum
		st.scratch[i] = sum
		sum += cnt
	}
	st.childOff[n] = sum
	for i := 0; i < n; i++ {
		for di := st.depOff[i]; di < st.depOff[i+1]; di++ {
			d := st.depList[di]
			st.childList[st.scratch[d]] = int32(i)
			st.scratch[d]++
		}
	}
	return st
}

// growSpecs returns a slice of length n, reusing capacity when possible.
func growSpecs(s []TaskSpec, n int) []TaskSpec {
	if cap(s) < n {
		return make([]TaskSpec, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// maybeRecycle returns a workflow record to the pool once nothing can
// reference it anymore: the workflow has finished and no node queue entry
// or ready item still points at it. The Future keeps its own schedule, so
// clearing the record's pointers cannot affect a caller holding the handle.
func (e *Engine) maybeRecycle(st *wfState) {
	if !st.finished || st.inflight != 0 || st.queuedRefs != 0 {
		return
	}
	full := st.specs[:cap(st.specs)]
	for i := range full {
		full[i] = TaskSpec{} // drop Deps/Knobs references for GC
	}
	st.fut = nil
	st.sched = nil
	st.tuner = nil
	st.variants = nil
	wfPool.Put(st)
}

// readyItem is one dispatchable task waiting in a tenant's fairness queue.
type readyItem struct {
	wf       *wfState
	task     int32
	restart  bool
	minStart float64 // earliest allowed start (failure recovery floor)
}

// execRequest is one unit of work queued on a node.
type execRequest struct {
	wf      *wfState
	task    *TaskSpec
	tidx    int32
	ready   float64 // dep outputs available on this node (incl. transfers)
	restart bool
	moved   int64   // bytes this placement pulls from other nodes
	groups  int     // batched transfers feeding this placement
	variant string  // implementation variant ("" = as submitted)
	estDur  float64 // dispatcher's estimated duration (nodeFree reclaim)
}

// execReport is one inline execution's completion (or loss) notice.
type execReport struct {
	wf       *wfState
	tidx     int32
	node     int // node index
	start    float64
	end      float64
	onFPGA   bool
	restart  bool
	moved    int64   // bytes the completed placement pulled from other nodes
	groups   int     // batched transfers that fed it
	lost     bool    // node died before the task finished
	failAt   float64 // when (only meaningful if lost)
	variant  string  // implementation variant requested ("" = as submitted)
	nominal  float64 // design-time cost of what actually ran (load learning)
	fellBack bool    // FPGA placement executed on CPU (device detached)
}

// ---------------------------------------------------------------------------
// dispatcher

// tenantQueue is one tenant's FIFO of ready tasks, drained round-robin
// against its peers. Ring layout: popped slots are reused once drained.
type tenantQueue struct {
	items []readyItem
	head  int
}

func (q *tenantQueue) push(it readyItem) { q.items = append(q.items, it) }

func (q *tenantQueue) empty() bool { return q.head >= len(q.items) }

func (q *tenantQueue) pop() readyItem {
	it := q.items[q.head]
	q.items[q.head].wf = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

// dispatchState is the dispatcher goroutine's private view of the cluster.
// Every per-node attribute is a flat slice indexed by node; the execution
// order across nodes comes from a modelled-time heap over the queue heads.
type dispatchState struct {
	nodeFree []float64 // estimated earliest idle time per node (placement)
	clock    []float64 // realized per-node modelled clock (execution)
	dead     []bool    // observed node deaths
	deadAt   []float64

	// heap orders the per-node queue heads by modelled start time with the
	// deterministic tie-break (time, workflow, task, node index). inHeap
	// tracks which nodes currently have an entry; heapDirty forces a
	// rebuild after queue steals invalidate heads (rare: unplug events).
	heap      *TimeHeap
	inHeap    []bool
	heapDirty bool

	// ready queues, one per tenant, drained round-robin.
	queues    []*tenantQueue
	tenantIdx map[string]int
	rrNext    int

	active map[*wfState]bool

	// Dependency-grouping scratch, indexed by source node and reset after
	// each placement via the touched list (see place).
	gLatest  []float64
	gBytes   []int64
	gCount   []int32
	gTouched []int32
	// variant candidate scratch (adaptive placements).
	variantsBuf []string

	// Cached monitor slowdown estimates per node. The estimate only moves
	// when onReport feeds a software completion ratio for that node, which
	// invalidates the cache entry — so place() avoids a mutexed map lookup
	// per candidate node per task.
	slowEst   []float64
	slowValid []bool

	// Aggregates feeding the Stats snapshot, maintained incrementally
	// where the dispatcher mutates queues/active/nodeFree so publishing a
	// snapshot is O(1) on the hot loop.
	submitted    int
	completed    int
	failed       int
	readyCount   int     // items across all fairness queues
	pendingTotal int     // unfinished tasks across active workflows
	backlog      float64 // max nodeFree (recomputed only on reclaim)
}

// newDispatchState sizes every per-node array and scratch buffer from the
// cluster once, ahead of the dispatch loop; the loop itself then runs
// allocation-free in steady state (enforced by the AllocsPerRun budgets in
// alloc_test.go).
func (e *Engine) newDispatchState() *dispatchState {
	nn := len(e.nodes)
	return &dispatchState{
		nodeFree:    make([]float64, nn),
		clock:       make([]float64, nn),
		dead:        make([]bool, nn),
		deadAt:      make([]float64, nn),
		heap:        NewTimeHeap(nn),
		inHeap:      make([]bool, nn),
		tenantIdx:   make(map[string]int),
		active:      make(map[*wfState]bool),
		gLatest:     make([]float64, nn),
		gBytes:      make([]int64, nn),
		gCount:      make([]int32, nn),
		gTouched:    make([]int32, 0, nn),
		variantsBuf: make([]string, 0, 3),
		slowEst:     make([]float64, nn),
		slowValid:   make([]bool, nn),
	}
}

func (e *Engine) dispatch() {
	defer close(e.doneCh)
	ds := e.newDispatchState()
	submitCh := e.submitCh
	for submitCh != nil || len(ds.active) > 0 {
		select {
		case st, ok := <-submitCh:
			if !ok {
				submitCh = nil
			} else {
				e.onSubmit(ds, st)
			}
		case <-e.ctrlSig:
		}
		submitCh = e.runLocal(ds, submitCh)
	}
	e.takeCtrl() // late control events are dropped, never block
}

// runLocal is the deterministic inner loop: it drains ready tasks into the
// node queues and executes queued requests inline, one per iteration, in
// modelled-start-time order across nodes (FIFO within a node). Control
// events are applied before every execution, so an unplug arriving from a
// trace callback invalidates queued placements exactly as it would have
// under any real interleaving. Pending submissions are slurped every
// iteration: a burst of near-simultaneous submissions from several tenants
// lands in the fairness queues together and is drained round-robin, and
// mid-run arrivals multiplex with executing work.
func (e *Engine) runLocal(ds *dispatchState, submitCh chan *wfState) chan *wfState {
	for {
	slurp:
		for submitCh != nil {
			select {
			case st, ok := <-submitCh:
				if !ok {
					submitCh = nil
				} else {
					e.onSubmit(ds, st)
				}
			default:
				break slurp
			}
		}
		for _, msg := range e.takeCtrl() {
			e.onCtrl(ds, msg)
		}
		if ds.heapDirty {
			e.rebuildHeap(ds)
			ds.heapDirty = false
		}
		e.drainReady(ds)
		if ds.heap.Len() == 0 {
			e.publishStats(ds)
			return submitCh
		}
		it := ds.heap.PopMin()
		ni := it.Seq
		ds.inHeap[ni] = false
		e.execNode(ds, ni)
		e.refreshHead(ds, ni)
		e.publishStats(ds)
	}
}

// headStart is the modelled start time of a node's next queued request.
func (ds *dispatchState) headStart(ni int, r execRequest) float64 {
	start := r.ready
	if c := ds.clock[ni]; c > start {
		start = c
	}
	return start
}

// refreshHead re-enters a node into the heap for its new queue head.
func (e *Engine) refreshHead(ds *dispatchState, ni int) {
	if ds.inHeap[ni] {
		return
	}
	if r, ok := e.queues[ni].peek(); ok {
		ds.heap.Push(TimeItem{
			Time: ds.headStart(ni, r), WF: r.wf.name, Task: r.task.Name, Seq: ni,
		})
		ds.inHeap[ni] = true
	}
}

// rebuildHeap reconstructs the head heap from scratch — needed after queue
// steals (device unplug) invalidate an unknown subset of heads.
func (e *Engine) rebuildHeap(ds *dispatchState) {
	ds.heap.Reset()
	for ni := range e.queues {
		ds.inHeap[ni] = false
		e.refreshHead(ds, ni)
	}
}

// execNode executes the head request of one node inline: it advances the
// node's modelled clock, claims FPGA devices through the platform hooks,
// and feeds the completion (or loss, once the node's injected failure time
// passes) straight into onReport.
func (e *Engine) execNode(ds *dispatchState, ni int) {
	req, ok := e.queues[ni].tryPop()
	if !ok {
		return
	}
	n := e.nodes[ni]
	start := req.ready
	if c := ds.clock[ni]; c > start {
		start = c
	}
	// Execution pays the live cost priced at the task's modelled start:
	// the load and attachment in effect then. An FPGA placement whose
	// device was unplugged by its start falls back to software.
	cost, nominal, onFPGA, devIdx, fellBack := costLive(req.task, n, req.variant, start)
	var end float64
	if onFPGA {
		s, f, ok, err := n.ClaimDeviceAt(devIdx, start, cost)
		if err == nil && ok {
			start, end = s, f
		} else {
			// The claim would queue past a detach (or failed): the
			// device is gone by the time it is this task's turn, so it
			// degrades to the as-submitted software fallback after all.
			onFPGA, fellBack = false, true
			cost, nominal = softwareFallback(req.task, n, start)
			end = start + cost
		}
	} else {
		end = start + cost
	}
	if failAt, failed := n.FailedAt(); failed && end > failAt {
		// The node dies under this task: everything queued here is lost.
		ds.clock[ni] = failAt
		e.onReport(ds, execReport{
			wf: req.wf, tidx: req.tidx, node: ni,
			restart: req.restart, lost: true, failAt: failAt,
		})
		return
	}
	ds.clock[ni] = end
	e.onReport(ds, execReport{
		wf: req.wf, tidx: req.tidx, node: ni,
		start: start, end: end, onFPGA: onFPGA, restart: req.restart,
		moved: req.moved, groups: req.groups,
		variant: req.variant, nominal: nominal, fellBack: fellBack,
	})
}

func (e *Engine) trace(ev Event) {
	if e.cfg.Trace != nil {
		e.cfg.Trace(ev)
	}
}

// pushReady appends one ready task to its workflow's tenant queue.
func (e *Engine) pushReady(ds *dispatchState, st *wfState, task int32, restart bool, minStart float64) {
	ds.queues[st.tq].push(readyItem{wf: st, task: task, restart: restart, minStart: minStart})
	st.queuedRefs++
	ds.readyCount++
}

func (e *Engine) onSubmit(ds *dispatchState, st *wfState) {
	ds.submitted++
	e.trace(Event{Kind: EventSubmit, Workflow: st.name, Tenant: st.tenant})
	st.sched.Policy = e.cfg.Policy
	if st.pending == 0 { // empty workflow completes immediately
		e.finish(ds, st, nil)
		return
	}
	ds.active[st] = true
	ds.pendingTotal += st.pending
	if e.cfg.Adaptive {
		st.tuner = e.newWorkflowTuner(st)
	}
	ti, ok := ds.tenantIdx[st.tenant]
	if !ok {
		ti = len(ds.queues)
		ds.tenantIdx[st.tenant] = ti
		ds.queues = append(ds.queues, &tenantQueue{})
	}
	st.tq = ti
	for i := range st.specs {
		if st.remaining[i] == 0 {
			e.pushReady(ds, st, int32(i), false, 0)
		}
	}
}

func (e *Engine) onReport(ds *dispatchState, rep execReport) {
	st := rep.wf
	st.inflight--
	nodeName := e.nodes[rep.node].Name
	taskName := st.specs[rep.tidx].Name
	if rep.lost {
		// First observation of this node's death: mark it and trace.
		if !ds.dead[rep.node] {
			ds.dead[rep.node] = true
			ds.deadAt[rep.node] = rep.failAt
			e.trace(Event{Kind: EventNodeFailure, Node: nodeName, Time: rep.failAt})
		}
		if st.finished {
			e.maybeRecycle(st)
			return
		}
		// Re-queue the lost task; it may not start before the failure time
		// (the monitor only learns of the loss when the node dies).
		e.trace(Event{
			Kind: EventReschedule, Workflow: st.name, Tenant: st.tenant,
			Task: taskName, Node: nodeName, Time: rep.failAt,
		})
		st.sched.Adapt.Reschedules++
		e.pushReady(ds, st, rep.tidx, true, rep.failAt)
		return
	}
	if st.finished {
		e.maybeRecycle(st)
		return
	}
	if free := ds.nodeFree[rep.node]; rep.end > free {
		ds.nodeFree[rep.node] = rep.end
		ds.raiseBacklog(rep.end)
	}
	// Feed the observation layers, split by what each owns: the monitor
	// learns per-node load from software completions (observed/nominal),
	// the tuner learns per-variant health — only the fpga variant, whose
	// fallback-to-software blowups are exactly the degradation signal;
	// software variants' live cost is already per-node nominal × monitor
	// load, and feeding their raw latencies into the tuner would mix task
	// sizes into the estimate and double-count node load.
	dur := rep.end - rep.start
	e.monitor.RecordTask(nodeName, dur)
	if !rep.onFPGA {
		e.monitor.ObserveRatio(nodeName, dur, rep.nominal)
		ds.slowValid[rep.node] = false
	}
	if st.tuner != nil && rep.variant == VariantFPGA {
		st.tuner.Observe(rep.variant, dur*1000)
	}
	if rep.variant != "" {
		if st.sched.Adapt.VariantCounts == nil {
			st.sched.Adapt.VariantCounts = make(map[string]int)
		}
		st.sched.Adapt.VariantCounts[rep.variant]++
	}
	if rep.fellBack {
		st.sched.Adapt.Fallbacks++
	}
	st.insertAssignment(Assignment{
		Task: taskName, Node: nodeName, Start: rep.start, End: rep.end,
		OnFPGA: rep.onFPGA, Restart: rep.restart,
	})
	st.sched.Transfers += rep.groups
	st.sched.MovedBytes += rep.moved
	if rep.end > st.sched.Makespan {
		st.sched.Makespan = rep.end
	}
	st.doneAt[rep.tidx] = rep.end
	st.locAt[rep.tidx] = int32(rep.node)
	st.pending--
	ds.pendingTotal--
	e.trace(Event{
		Kind: EventTaskDone, Workflow: st.name, Tenant: st.tenant,
		Task: taskName, Node: nodeName, Time: rep.end,
	})
	for ci := st.childOff[rep.tidx]; ci < st.childOff[rep.tidx+1]; ci++ {
		c := st.childList[ci]
		st.remaining[c]--
		if st.remaining[c] == 0 {
			e.pushReady(ds, st, c, false, 0)
		}
	}
	if st.pending == 0 {
		e.finish(ds, st, nil)
	}
}

// insertAssignment keeps the schedule ordered by Start as completions
// arrive, inserting after equal keys — the stable order the full-slice
// re-sort used to produce, without re-sorting on every mutation. Reports
// arrive roughly time-ordered, so the backward scan is O(1) amortized.
func (st *wfState) insertAssignment(a Assignment) {
	as := st.sched.Assignments
	i := len(as)
	for i > 0 && as[i-1].Start > a.Start {
		i--
	}
	as = append(as, Assignment{})
	copy(as[i+1:], as[i:])
	as[i] = a
	st.sched.Assignments = as
}

func (e *Engine) finish(ds *dispatchState, st *wfState, err error) {
	if st.finished {
		return
	}
	st.finished = true
	delete(ds.active, st)
	// An error finish abandons the workflow's unfinished tasks (its stale
	// ready items are skipped — and uncounted — when popped).
	ds.pendingTotal -= st.pending
	if err != nil {
		ds.failed++
	} else {
		ds.completed++
	}
	st.fut.sched = st.sched
	st.fut.err = err
	e.trace(Event{
		Kind: EventWorkflowDone, Workflow: st.name, Tenant: st.tenant,
		Time: st.sched.Makespan,
	})
	close(st.fut.done)
	e.maybeRecycle(st)
}

// drainReady places every queued ready task, visiting tenants round-robin so
// no tenant's burst can starve the others.
func (e *Engine) drainReady(ds *dispatchState) {
	for {
		item, ok := e.nextFair(ds)
		if !ok {
			return
		}
		item.wf.queuedRefs--
		if item.wf.finished {
			e.maybeRecycle(item.wf)
			continue
		}
		e.place(ds, item)
	}
}

// nextFair pops the next ready task in round-robin tenant order.
func (e *Engine) nextFair(ds *dispatchState) (readyItem, bool) {
	n := len(ds.queues)
	for i := 0; i < n; i++ {
		qi := (ds.rrNext + i) % n
		q := ds.queues[qi]
		if q.empty() {
			continue
		}
		ds.readyCount--
		ds.rrNext = (qi + 1) % n
		return q.pop(), true
	}
	return readyItem{}, false
}

// place chooses a node (and, in adaptive mode, an implementation variant)
// for one ready task, records the batched dependency transfers, and
// enqueues the task on that node's work queue. The static path estimates
// every node with the design-time cost model (costOn); the adaptive path
// ranges over the workflow tuner's admissible variants estimated against
// the live environment. Dependency outputs are grouped by source node once
// per placement (scratch arrays in ds), and each candidate node prices one
// batched transfer per foreign group.
func (e *Engine) place(ds *dispatchState, item readyItem) {
	st := item.wf
	tid := item.task
	task := &st.specs[tid]
	adaptive := e.cfg.Adaptive && st.tuner != nil

	// Group dependency outputs by the node holding them: one bulk transfer
	// per foreign source (one link latency per source instead of one per
	// dependency).
	touched := ds.gTouched[:0]
	for di := st.depOff[tid]; di < st.depOff[tid+1]; di++ {
		d := st.depList[di]
		src := st.locAt[d]
		if ds.gCount[src] == 0 {
			touched = append(touched, src)
		}
		ds.gCount[src]++
		ds.gBytes[src] += st.specs[d].OutputBytes
		if t := st.doneAt[d]; t > ds.gLatest[src] {
			ds.gLatest[src] = t
		}
	}

	variants := ds.variantsBuf[:0]
	fpgaDrift := 1.0
	if adaptive {
		variants = e.variantsInto(variants, st, task)
		// The fpga drift is node-independent: computed once per placement,
		// not inside the node loop.
		fpgaDrift = st.tuner.Drift(VariantFPGA)
	} else {
		variants = append(variants, "")
	}
	ds.variantsBuf = variants

	taskBytes := task.TotalBytes()
	bestNode, bestVariant := -1, ""
	bestReady, bestEnd := 0.0, 0.0
	bestBytes := int64(0)
	bestGroups := 0
	for ni, n := range e.nodes {
		if ds.dead[ni] {
			continue
		}
		ready, moved, groups := 0.0, int64(0), 0
		for _, src := range touched {
			arrive := ds.gLatest[src]
			if int(src) != ni {
				arrive += e.transferSeconds(e.nodes[src].Name, n.Name, ds.gBytes[src], int(ds.gCount[src]))
				moved += ds.gBytes[src]
				groups++
			}
			if arrive > ready {
				ready = arrive
			}
		}
		if item.minStart > ready {
			ready = item.minStart
		}
		if free := ds.nodeFree[ni]; free > ready {
			ready = free
		}
		slowdown := -1.0 // monitor estimate, fetched once per node, lazily
		for _, v := range variants {
			var est float64
			if !adaptive {
				est, _, _ = costOn(task, n)
			} else if v == VariantFPGA {
				// Priced at the modelled time the task would start there:
				// the scheduler knows the environment as of that moment,
				// not the end of any scripted fault timeline.
				c, _, ok := fpgaCostOn(task, n, ready)
				if !ok {
					continue // no programmed device attached at ready time
				}
				est = c * fpgaDrift
			} else {
				cores := 1
				if v == VariantCPU16 {
					cores = cpu16Cores
				}
				if slowdown < 0 {
					if !ds.slowValid[ni] {
						ds.slowEst[ni] = e.monitor.SlowdownEstimate(n.Name)
						ds.slowValid[ni] = true
					}
					slowdown = ds.slowEst[ni]
				}
				est = n.RunCPU(task.Flops, taskBytes, cores) * slowdown
			}
			end := ready + est
			better := bestNode < 0 || end < bestEnd
			if e.cfg.Policy == PolicyFIFO {
				// FIFO places by earliest start; variants on one node tie
				// on start, so the estimate breaks the tie among them.
				better = bestNode < 0 || ready < bestReady ||
					(adaptive && ready == bestReady && end < bestEnd)
			}
			if better {
				bestNode, bestVariant, bestReady, bestEnd = ni, v, ready, end
				bestBytes, bestGroups = moved, groups
			}
		}
	}
	// Reset the grouping scratch for the next placement.
	for _, src := range touched {
		ds.gLatest[src], ds.gBytes[src], ds.gCount[src] = 0, 0, 0
	}
	ds.gTouched = touched[:0]

	if bestNode < 0 {
		e.finish(ds, st, fmt.Errorf("runtime: no alive node can run task %q of %s", task.Name, st.name))
		return
	}
	ds.nodeFree[bestNode] = bestEnd
	ds.raiseBacklog(bestEnd)
	if bestGroups > 0 {
		e.trace(Event{
			Kind: EventTransfer, Workflow: st.name, Tenant: st.tenant,
			Task: task.Name, Node: e.nodes[bestNode].Name, Time: bestReady,
		})
	}
	if adaptive {
		e.trace(Event{
			Kind: EventVariant, Workflow: st.name, Tenant: st.tenant,
			Task: task.Name, Node: e.nodes[bestNode].Name, Time: bestReady, Detail: bestVariant,
		})
	}
	// Transfer stats are accounted on completion (onReport), not here: a
	// placement lost to a node failure is re-placed and would otherwise
	// count its transfers twice.
	st.inflight++
	e.queues[bestNode].push(execRequest{
		wf: st, task: task, tidx: tid, ready: bestReady, restart: item.restart,
		moved: bestBytes, groups: bestGroups, variant: bestVariant,
		estDur: bestEnd - bestReady,
	})
	e.refreshHead(ds, bestNode)
}

// transferSeconds prices moving the coalesced outputs of `deps`
// dependencies between two nodes. With a network stack configured
// (EngineConfig.Net) the batch pays one packetized transfer — per-MTU
// framing overhead plus one stack traversal, so coalescing saves the
// (deps-1) extra traversals; otherwise the cluster's flat link model
// applies.
func (e *Engine) transferSeconds(from, to string, bytes int64, deps int) float64 {
	if from == to || deps <= 0 {
		return 0
	}
	if e.cfg.Net != nil {
		return e.cfg.Net.SendSeconds(bytes)
	}
	return e.cluster.BatchTransferSeconds(from, to, bytes, deps)
}

// ---------------------------------------------------------------------------
// per-node work queues

// workQueue is an unbounded FIFO of execution requests in ring layout (the
// popped prefix is reused once the queue drains). It is owned by the
// dispatcher goroutine exclusively — push from placement, peek/tryPop from
// inline execution, steal from control handling all run there — so it
// carries no synchronization at all; dropping the old executor-era
// mutex/condvar took both off the per-task hot path.
type workQueue struct {
	items  []execRequest
	head   int
	closed bool
}

func newWorkQueue() *workQueue { return newWorkQueueCap(8) }

func newWorkQueueCap(n int) *workQueue {
	return &workQueue{items: make([]execRequest, 0, n)}
}

func (q *workQueue) push(r execRequest) {
	q.items = append(q.items, r)
}

// steal removes and returns every queued (not yet running) request matching
// the predicate. The dispatcher uses it to invalidate placements when an
// environment event makes them stale — e.g. FPGA work queued on a node
// whose accelerator was just unplugged.
func (q *workQueue) steal(match func(execRequest) bool) []execRequest {
	var stolen []execRequest
	kept := q.items[:q.head]
	for _, r := range q.items[q.head:] {
		if match(r) {
			stolen = append(stolen, r)
		} else {
			kept = append(kept, r)
		}
	}
	q.items = kept
	return stolen
}

func (q *workQueue) close() {
	q.closed = true
}

// peek returns the head request without removing it.
func (q *workQueue) peek() (execRequest, bool) {
	if q.head >= len(q.items) {
		return execRequest{}, false
	}
	return q.items[q.head], true
}

// tryPop removes and returns the head request.
func (q *workQueue) tryPop() (execRequest, bool) {
	return q.pop()
}

// pop removes and returns the head request; ok=false when empty.
func (q *workQueue) pop() (execRequest, bool) {
	if q.head >= len(q.items) {
		return execRequest{}, false
	}
	r := q.items[q.head]
	q.items[q.head] = execRequest{} // drop references for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return r, true
}
