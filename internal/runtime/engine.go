package runtime

import (
	"fmt"
	"sort"
	"sync"

	"everest/internal/autotuner"
	"everest/internal/netsim"
	"everest/internal/platform"
)

// This file implements the concurrent half of the resource manager: an
// event-driven engine that multiplexes many workflows (tenants) onto one
// simulated cluster. The serial Scheduler in runtime.go plans a single
// workflow ahead of time; the Engine executes many of them online, with
// per-node work queues, one executor goroutine per node, batched inter-node
// transfers, and reactive rescheduling when a node fails mid-run. All time
// is modelled seconds (never wall clock). Execution is genuinely
// concurrent, so the exact placement can vary with report interleaving
// across runs; correctness properties (dependency order, fairness, the
// multiplexing speedup) hold for every interleaving, and tests assert
// those rather than exact schedules.

// EventKind classifies engine trace events.
type EventKind int

// Engine trace event kinds.
const (
	// EventSubmit fires when a workflow enters the engine.
	EventSubmit EventKind = iota
	// EventTaskDone fires when a task completes on its node.
	EventTaskDone
	// EventTransfer fires once per batched inter-node dependency transfer.
	EventTransfer
	// EventNodeFailure fires the first time the engine observes a node death.
	EventNodeFailure
	// EventReschedule fires when a task lost to a failure is re-queued.
	EventReschedule
	// EventWorkflowDone fires when the last task of a workflow completes.
	EventWorkflowDone
	// EventDeviceUnplug fires when an accelerator is detached from a node
	// (SR-IOV VF unplug surfaced through the engine control API).
	EventDeviceUnplug
	// EventDevicePlug fires when a detached accelerator comes back.
	EventDevicePlug
	// EventNodeSlowdown fires when a node's load factor changes.
	EventNodeSlowdown
	// EventVariant fires on each adaptive placement; Detail names the
	// implementation variant the tuner selected.
	EventVariant
)

func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventTaskDone:
		return "task-done"
	case EventTransfer:
		return "transfer"
	case EventNodeFailure:
		return "node-failure"
	case EventReschedule:
		return "reschedule"
	case EventWorkflowDone:
		return "workflow-done"
	case EventDeviceUnplug:
		return "device-unplug"
	case EventDevicePlug:
		return "device-plug"
	case EventNodeSlowdown:
		return "node-slowdown"
	case EventVariant:
		return "variant"
	}
	return "unknown"
}

// Event is one engine trace record. Trace callbacks run on the dispatcher
// goroutine, so they observe events in a consistent order and need no
// locking of their own.
type Event struct {
	Kind     EventKind
	Workflow string
	Tenant   string
	Task     string
	Node     string
	Time     float64 // modelled seconds
	Detail   string  // event-specific: variant name, device, slowdown factor
}

// EngineConfig configures a concurrent engine.
type EngineConfig struct {
	// Policy selects node placement: PolicyHEFT picks the earliest modelled
	// finish time, PolicyFIFO the earliest modelled start time.
	Policy Policy
	// Failures are node deaths injected at engine start. The dispatcher has
	// no advance knowledge of them: tasks are dispatched normally, lost when
	// the node dies under them, and rescheduled onto the survivors.
	Failures []NodeFailure
	// Events are environment changes (unplug/plug, slowdown) scripted at
	// start as modelled-time condition timelines, so executors price them
	// deterministically. The static engine's placement ignores them (its
	// estimates are design-time); the adaptive engine sees their latest
	// state through the live checks.
	Events []EnvEvent
	// Trace, when set, receives every engine event (dispatcher goroutine).
	Trace func(Event)
	// Adaptive closes the autotuner→engine→virt loop: every placement
	// consults a per-workflow variant tuner and the node monitors instead of
	// the design-time cost model, and hot-plug events invalidate queued
	// placements (see adaptive.go).
	Adaptive bool
	// Monitor collects per-node observations; the engine creates its own
	// when nil. Sharing one lets callers read node health after a run.
	Monitor *platform.Monitor
	// Net, when set, prices inter-node dependency transfers over the
	// packetization-aware cloudFPGA network stack (netsim.Stack: per-MTU
	// framing overhead, one-way stack latency, ack derating) instead of the
	// cluster's flat link model. Small payloads become latency-bound and
	// large ones bandwidth-bound, which is what makes batched transfers
	// between variant placements worth modelling.
	Net *netsim.Stack
}

// Future is the handle returned for one workflow submission. Wait blocks
// until the workflow drains and returns its realized schedule.
type Future struct {
	done chan struct{}

	// Written once by the dispatcher before close(done).
	sched *Schedule
	err   error

	// Immutable submission metadata.
	Name   string
	Tenant string
}

// Wait blocks until the workflow completes and returns its schedule.
func (f *Future) Wait() (*Schedule, error) {
	<-f.done
	return f.sched, f.err
}

// Done returns a channel closed when the workflow has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// SubmitOptions name a submission and its tenant for fairness accounting.
type SubmitOptions struct {
	Name   string // workflow name (defaults to wf<N>)
	Tenant string // fairness domain (defaults to "default")
}

// EngineStats is a point-in-time snapshot of one engine's serving state —
// the per-engine export a federation tier (internal/fleet) reads to judge a
// site's queue depth and accelerator capacity before routing work to it.
// Counter fields are maintained by the dispatcher goroutine and published
// after every event it processes; device fields are computed live from the
// cluster at snapshot time.
type EngineStats struct {
	Submitted int // workflows the dispatcher has accepted
	Completed int // workflows drained successfully
	Failed    int // workflows drained with an error
	Active    int // workflows in flight
	// ReadyTasks counts tasks sitting in the tenant fairness queues,
	// dependency-ready but not yet placed on a node.
	ReadyTasks int
	// PendingTasks counts unfinished tasks across all active workflows
	// (ready, queued on nodes, and still dependency-blocked).
	PendingTasks int
	// Backlog is the modelled frontier: the latest estimated earliest-idle
	// time across nodes — how far into modelled time the engine's accepted
	// work already reaches.
	Backlog float64
	// OnlineDevices counts attached accelerator devices on alive nodes;
	// ProgrammedOnline counts the subset carrying a bitstream (the capacity
	// the fpga variant can actually reach).
	OnlineDevices    int
	ProgrammedOnline int
}

// Engine executes many workflows concurrently over a simulated cluster.
type Engine struct {
	cluster *platform.Cluster
	reg     *platform.Registry
	cfg     EngineConfig

	submitCh chan *wfState
	reportCh chan execReport
	doneCh   chan struct{} // closed when the dispatcher exits

	statsMu sync.Mutex
	stats   EngineStats // dispatcher-published snapshot (counter fields)

	// Environment events (plug/unplug, slowdown) arrive through an
	// unbounded ordered queue: sendCtrl must never block, because control
	// calls are legal from the dispatcher's own trace callbacks (fault
	// scripts) and from hot-plug subscriber goroutines. ctrlSig (capacity
	// 1) wakes the dispatcher.
	ctrlMu  sync.Mutex
	ctrlQ   []ctrlMsg
	ctrlSig chan struct{}

	monitor *platform.Monitor

	queues map[string]*workQueue
	execWG sync.WaitGroup

	mu      sync.Mutex
	started bool
	closed  bool
	nextID  int
	subWG   sync.WaitGroup // submissions in flight toward submitCh
}

// NewEngine builds an engine over a cluster and bitstream registry.
func NewEngine(c *platform.Cluster, reg *platform.Registry, cfg EngineConfig) *Engine {
	mon := cfg.Monitor
	if mon == nil {
		mon = platform.NewMonitor(c)
	}
	return &Engine{
		cluster:  c,
		reg:      reg,
		cfg:      cfg,
		monitor:  mon,
		submitCh: make(chan *wfState, 64),
		reportCh: make(chan execReport, 64),
		ctrlSig:  make(chan struct{}, 1),
		doneCh:   make(chan struct{}),
		queues:   make(map[string]*workQueue),
	}
}

// Monitor returns the engine's per-node observation layer.
func (e *Engine) Monitor() *platform.Monitor { return e.monitor }

// Stats returns a snapshot of the engine's serving state. The counter
// fields reflect the dispatcher's view as of the last event it processed;
// the device fields are computed from the cluster at call time. Safe to
// call from any goroutine, before Start, and after Shutdown.
func (e *Engine) Stats() EngineStats {
	e.statsMu.Lock()
	st := e.stats
	e.statsMu.Unlock()
	for _, n := range e.cluster.Nodes {
		if _, failed := n.FailedAt(); failed {
			continue
		}
		for idx := range n.Devices {
			if !n.DeviceOnline(idx) {
				continue
			}
			st.OnlineDevices++
			if _, ok := n.Programmed(idx); ok {
				st.ProgrammedOnline++
			}
		}
	}
	return st
}

// publishStats copies the dispatcher's incrementally maintained counters
// into the snapshot Stats() serves. Called by the dispatcher after each
// processed event, so single-writer and O(1); the mutex only orders it
// against readers.
func (e *Engine) publishStats(ds *dispatchState) {
	st := EngineStats{
		Submitted:    ds.submitted,
		Completed:    ds.completed,
		Failed:       ds.failed,
		Active:       len(ds.active),
		ReadyTasks:   ds.readyCount,
		PendingTasks: ds.pendingTotal,
		Backlog:      ds.backlog,
	}
	e.statsMu.Lock()
	e.stats = st
	e.statsMu.Unlock()
}

// raiseBacklog tracks the modelled frontier as nodeFree entries advance.
func (ds *dispatchState) raiseBacklog(t float64) {
	if t > ds.backlog {
		ds.backlog = t
	}
}

// Start spawns one executor goroutine per node plus the dispatcher loop. It
// takes ownership of the cluster: stale failure state and device claims
// left by a previous engine run are cleared before cfg.Failures are
// applied.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("runtime: engine already started")
	}
	if len(e.cluster.Nodes) == 0 {
		return fmt.Errorf("runtime: engine needs at least one node")
	}
	e.started = true
	for _, n := range e.cluster.Nodes {
		n.Heal()
		n.ResetDeviceClaims()
		n.ResetCondition()
	}
	e.monitor.Reset() // stale load evidence dies with the previous run
	// Start is the ownership boundary: ResetCondition above wiped attachment
	// and load faults, so environment events queued before Start are stale
	// and must not degrade tuners for devices that are back online.
	e.takeCtrl()
	select {
	case <-e.ctrlSig:
	default:
	}
	for _, f := range e.cfg.Failures {
		if n := e.cluster.FindNode(f.Node); n != nil {
			n.Fail(f.AtTime)
		}
	}
	e.applyEnvEvents()
	for _, n := range e.cluster.Nodes {
		q := newWorkQueue()
		e.queues[n.Name] = q
		e.execWG.Add(1)
		go e.runExecutor(n, q)
	}
	go e.dispatch()
	return nil
}

// Submit hands a workflow to the engine and returns its result future. The
// workflow must not be mutated after submission. Submissions made before
// Start queue up and are placed together — fairly across tenants — when the
// engine starts.
func (e *Engine) Submit(w *Workflow, opt SubmitOptions) (*Future, error) {
	if w == nil {
		return nil, fmt.Errorf("runtime: nil workflow")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("runtime: engine shut down")
	}
	e.nextID++
	id := e.nextID
	e.subWG.Add(1)
	e.mu.Unlock()

	name := opt.Name
	if name == "" {
		name = fmt.Sprintf("wf%d", id)
	}
	tenant := opt.Tenant
	if tenant == "" {
		tenant = "default"
	}
	st := newWFState(w, name, tenant, &Future{
		done: make(chan struct{}), Name: name, Tenant: tenant,
	})
	e.submitCh <- st
	e.subWG.Done()
	return st.fut, nil
}

// Shutdown waits for every submitted workflow to drain, then stops the
// executors and the dispatcher. It is safe to call once.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if !e.started || e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.subWG.Wait() // no more sends into submitCh
	close(e.submitCh)
	<-e.doneCh
}

// FailNode injects a node failure while the engine runs (best-effort: tasks
// that already completed in modelled time are unaffected). Prefer
// EngineConfig.Failures for deterministic experiments.
func (e *Engine) FailNode(name string, at float64) error {
	n := e.cluster.FindNode(name)
	if n == nil {
		return fmt.Errorf("runtime: unknown node %q", name)
	}
	n.Fail(at)
	return nil
}

// ---------------------------------------------------------------------------
// per-workflow bookkeeping

type wfState struct {
	name   string
	tenant string
	tasks  map[string]*TaskSpec
	order  []string

	remaining map[string]int      // task -> unfinished dep count
	children  map[string][]string // task -> dependents
	doneAt    map[string]float64  // task -> completion time
	locAt     map[string]string   // task -> node holding its output
	pending   int                 // tasks not yet completed
	finished  bool

	// tuner is the per-workflow mARGOt instance (adaptive mode only).
	tuner *autotuner.Tuner
	// variants are compiler-derived tuner seeds snapshotted at submission
	// (Workflow.SetVariants); empty means the engine derives its own.
	variants []autotuner.Variant

	sched *Schedule
	fut   *Future
}

func newWFState(w *Workflow, name, tenant string, fut *Future) *wfState {
	st := &wfState{
		name:      name,
		tenant:    tenant,
		tasks:     make(map[string]*TaskSpec, w.Len()),
		order:     w.Tasks(),
		remaining: make(map[string]int, w.Len()),
		children:  make(map[string][]string),
		doneAt:    make(map[string]float64, w.Len()),
		locAt:     make(map[string]string, w.Len()),
		pending:   w.Len(),
		variants:  w.Variants(),
		sched:     &Schedule{},
		fut:       fut,
	}
	// Snapshot specs so callers mutating the workflow later cannot race the
	// executors. Iterate in submission order, not map order: the children
	// lists decide the order siblings enter the ready queues when their
	// parent completes, and map iteration would make placement — and with
	// it modelled completion times — vary run to run.
	for _, name := range st.order {
		t := w.tasks[name]
		cp := *t
		st.tasks[name] = &cp
		st.remaining[name] = len(t.Deps)
		for _, d := range t.Deps {
			st.children[d] = append(st.children[d], name)
		}
	}
	return st
}

// readyItem is one dispatchable task waiting in a tenant's fairness queue.
type readyItem struct {
	wf       *wfState
	task     string
	restart  bool
	minStart float64 // earliest allowed start (failure recovery floor)
}

// execRequest is one unit of work handed to a node executor.
type execRequest struct {
	wf      *wfState
	task    *TaskSpec
	ready   float64 // dep outputs available on this node (incl. transfers)
	restart bool
	moved   int64   // bytes this placement pulls from other nodes
	groups  int     // batched transfers feeding this placement
	variant string  // implementation variant ("" = as submitted)
	estDur  float64 // dispatcher's estimated duration (nodeFree reclaim)
}

// execReport is an executor's completion (or loss) notice.
type execReport struct {
	wf       *wfState
	task     *TaskSpec
	node     string
	start    float64
	end      float64
	onFPGA   bool
	restart  bool
	moved    int64   // bytes the completed placement pulled from other nodes
	groups   int     // batched transfers that fed it
	lost     bool    // node died before the task finished
	failAt   float64 // when (only meaningful if lost)
	variant  string  // implementation variant requested ("" = as submitted)
	nominal  float64 // design-time cost of what actually ran (load learning)
	fellBack bool    // FPGA placement executed on CPU (device detached)
}

// ---------------------------------------------------------------------------
// dispatcher

// dispatchState is the dispatcher goroutine's private view of the cluster.
type dispatchState struct {
	nodeFree map[string]float64 // estimated earliest idle time per node
	dead     map[string]bool    // observed node deaths
	deadAt   map[string]float64

	// ready queues, one per tenant, drained round-robin.
	queues  map[string][]readyItem
	tenants []string // round-robin ring (insertion order)
	rrNext  int

	active map[*wfState]bool

	// Aggregates feeding the Stats snapshot, maintained incrementally
	// where the dispatcher mutates queues/active/nodeFree so publishing a
	// snapshot is O(1) on the hot loop.
	submitted    int
	completed    int
	failed       int
	readyCount   int     // items across all fairness queues
	pendingTotal int     // unfinished tasks across active workflows
	backlog      float64 // max nodeFree (recomputed only on reclaim)
}

func (e *Engine) dispatch() {
	defer close(e.doneCh)
	ds := &dispatchState{
		nodeFree: make(map[string]float64, len(e.cluster.Nodes)),
		dead:     make(map[string]bool),
		deadAt:   make(map[string]float64),
		queues:   make(map[string][]readyItem),
		active:   make(map[*wfState]bool),
	}
	submitCh := e.submitCh
	for submitCh != nil || len(ds.active) > 0 {
		select {
		case st, ok := <-submitCh:
			if !ok {
				submitCh = nil
			} else {
				e.onSubmit(ds, st)
			}
		case rep := <-e.reportCh:
			e.onReport(ds, rep)
		case <-e.ctrlSig:
		}
		// Slurp every already-pending event before placing anything, so a
		// burst of near-simultaneous submissions from several tenants lands
		// in the fairness queues together and is drained round-robin instead
		// of first-come-first-served.
	slurp:
		for {
			select {
			case st, ok := <-submitCh:
				if !ok {
					submitCh = nil
				} else {
					e.onSubmit(ds, st)
				}
			case rep := <-e.reportCh:
				e.onReport(ds, rep)
			case <-e.ctrlSig:
			default:
				break slurp
			}
		}
		for _, msg := range e.takeCtrl() {
			e.onCtrl(ds, msg)
		}
		e.drainReady(ds)
		e.publishStats(ds)
	}
	for _, q := range e.queues {
		q.close()
	}
	// Executors may still be draining queued work for workflows that already
	// finished with an error; keep consuming their reports so they never
	// block on reportCh while we wait for them to exit.
	execDone := make(chan struct{})
	go func() {
		e.execWG.Wait()
		close(execDone)
	}()
	for {
		select {
		case <-e.reportCh:
		case <-e.ctrlSig:
			e.takeCtrl() // late control events are dropped, never block
		case <-execDone:
			return
		}
	}
}

func (e *Engine) trace(ev Event) {
	if e.cfg.Trace != nil {
		e.cfg.Trace(ev)
	}
}

func (e *Engine) onSubmit(ds *dispatchState, st *wfState) {
	ds.submitted++
	e.trace(Event{Kind: EventSubmit, Workflow: st.name, Tenant: st.tenant})
	if st.pending == 0 { // empty workflow completes immediately
		st.sched.Policy = e.cfg.Policy
		e.finish(ds, st, nil)
		return
	}
	ds.active[st] = true
	ds.pendingTotal += st.pending
	st.sched.Policy = e.cfg.Policy
	if e.cfg.Adaptive {
		st.tuner = e.newWorkflowTuner(st)
	}
	if !containsTenant(ds.tenants, st.tenant) {
		ds.tenants = append(ds.tenants, st.tenant)
	}
	for _, name := range st.order {
		if st.remaining[name] == 0 {
			ds.queues[st.tenant] = append(ds.queues[st.tenant], readyItem{wf: st, task: name})
			ds.readyCount++
		}
	}
}

func containsTenant(ts []string, t string) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func (e *Engine) onReport(ds *dispatchState, rep execReport) {
	st := rep.wf
	if rep.lost {
		// First observation of this node's death: mark it and trace.
		if !ds.dead[rep.node] {
			ds.dead[rep.node] = true
			ds.deadAt[rep.node] = rep.failAt
			e.trace(Event{Kind: EventNodeFailure, Node: rep.node, Time: rep.failAt})
		}
		if st.finished {
			return
		}
		// Re-queue the lost task; it may not start before the failure time
		// (the monitor only learns of the loss when the node dies).
		e.trace(Event{
			Kind: EventReschedule, Workflow: st.name, Tenant: st.tenant,
			Task: rep.task.Name, Node: rep.node, Time: rep.failAt,
		})
		st.sched.Adapt.Reschedules++
		ds.queues[st.tenant] = append(ds.queues[st.tenant], readyItem{
			wf: st, task: rep.task.Name, restart: true, minStart: rep.failAt,
		})
		ds.readyCount++
		return
	}
	if st.finished {
		return
	}
	if free := ds.nodeFree[rep.node]; rep.end > free {
		ds.nodeFree[rep.node] = rep.end
		ds.raiseBacklog(rep.end)
	}
	// Feed the observation layers, split by what each owns: the monitor
	// learns per-node load from software completions (observed/nominal),
	// the tuner learns per-variant health — only the fpga variant, whose
	// fallback-to-software blowups are exactly the degradation signal;
	// software variants' live cost is already per-node nominal × monitor
	// load, and feeding their raw latencies into the tuner would mix task
	// sizes into the estimate and double-count node load.
	dur := rep.end - rep.start
	e.monitor.RecordTask(rep.node, dur)
	if !rep.onFPGA {
		e.monitor.ObserveRatio(rep.node, dur, rep.nominal)
	}
	if st.tuner != nil && rep.variant == VariantFPGA {
		st.tuner.Observe(rep.variant, dur*1000)
	}
	if rep.variant != "" {
		if st.sched.Adapt.VariantCounts == nil {
			st.sched.Adapt.VariantCounts = make(map[string]int)
		}
		st.sched.Adapt.VariantCounts[rep.variant]++
	}
	if rep.fellBack {
		st.sched.Adapt.Fallbacks++
	}
	st.sched.Assignments = append(st.sched.Assignments, Assignment{
		Task: rep.task.Name, Node: rep.node, Start: rep.start, End: rep.end,
		OnFPGA: rep.onFPGA, Restart: rep.restart,
	})
	st.sched.Transfers += rep.groups
	st.sched.MovedBytes += rep.moved
	if rep.end > st.sched.Makespan {
		st.sched.Makespan = rep.end
	}
	st.doneAt[rep.task.Name] = rep.end
	st.locAt[rep.task.Name] = rep.node
	st.pending--
	ds.pendingTotal--
	e.trace(Event{
		Kind: EventTaskDone, Workflow: st.name, Tenant: st.tenant,
		Task: rep.task.Name, Node: rep.node, Time: rep.end,
	})
	for _, child := range st.children[rep.task.Name] {
		st.remaining[child]--
		if st.remaining[child] == 0 {
			ds.queues[st.tenant] = append(ds.queues[st.tenant], readyItem{wf: st, task: child})
			ds.readyCount++
		}
	}
	if st.pending == 0 {
		e.finish(ds, st, nil)
	}
}

func (e *Engine) finish(ds *dispatchState, st *wfState, err error) {
	if st.finished {
		return
	}
	st.finished = true
	delete(ds.active, st)
	// An error finish abandons the workflow's unfinished tasks (its stale
	// ready items are skipped — and uncounted — when popped).
	ds.pendingTotal -= st.pending
	if err != nil {
		ds.failed++
	} else {
		ds.completed++
	}
	sort.SliceStable(st.sched.Assignments, func(i, j int) bool {
		return st.sched.Assignments[i].Start < st.sched.Assignments[j].Start
	})
	st.fut.sched = st.sched
	st.fut.err = err
	e.trace(Event{
		Kind: EventWorkflowDone, Workflow: st.name, Tenant: st.tenant,
		Time: st.sched.Makespan,
	})
	close(st.fut.done)
}

// drainReady places every queued ready task, visiting tenants round-robin so
// no tenant's burst can starve the others.
func (e *Engine) drainReady(ds *dispatchState) {
	for {
		item, ok := e.nextFair(ds)
		if !ok {
			return
		}
		if item.wf.finished {
			continue
		}
		e.place(ds, item)
	}
}

// nextFair pops the next ready task in round-robin tenant order.
func (e *Engine) nextFair(ds *dispatchState) (readyItem, bool) {
	n := len(ds.tenants)
	for i := 0; i < n; i++ {
		t := ds.tenants[(ds.rrNext+i)%n]
		q := ds.queues[t]
		if len(q) == 0 {
			continue
		}
		item := q[0]
		ds.queues[t] = q[1:]
		ds.readyCount--
		ds.rrNext = (ds.rrNext + i + 1) % n
		return item, true
	}
	return readyItem{}, false
}

// place chooses a node (and, in adaptive mode, an implementation variant)
// for one ready task, records the batched dependency transfers, and
// enqueues the task on that node's work queue. The static path estimates
// every node with the design-time cost model (costOn); the adaptive path
// ranges over the workflow tuner's admissible variants estimated against
// the live environment (estimateVariant).
func (e *Engine) place(ds *dispatchState, item readyItem) {
	st := item.wf
	task := st.tasks[item.task]
	adaptive := e.cfg.Adaptive && st.tuner != nil
	variants := []string{""} // "" = as submitted (static path)
	if adaptive {
		variants = e.variantsFor(st, task)
	}
	estimate := func(n *platform.Node, v string, ready float64) (float64, bool) {
		cost, _, _ := costOn(task, n)
		return cost, true
	}
	if adaptive {
		estimate = e.variantEstimator(st, task)
	}

	bestNode, bestVariant := "", ""
	bestReady, bestEnd := 0.0, 0.0
	bestBytes := int64(0)
	bestGroups := 0
	for _, n := range e.cluster.Nodes {
		if ds.dead[n.Name] {
			continue
		}
		ready, moved, groups := e.readyOn(st, task, n.Name)
		if item.minStart > ready {
			ready = item.minStart
		}
		if free := ds.nodeFree[n.Name]; free > ready {
			ready = free
		}
		for _, v := range variants {
			est, ok := estimate(n, v, ready)
			if !ok {
				continue
			}
			end := ready + est
			better := bestNode == "" || end < bestEnd
			if e.cfg.Policy == PolicyFIFO {
				// FIFO places by earliest start; variants on one node tie
				// on start, so the estimate breaks the tie among them.
				better = bestNode == "" || ready < bestReady ||
					(adaptive && ready == bestReady && end < bestEnd)
			}
			if better {
				bestNode, bestVariant, bestReady, bestEnd = n.Name, v, ready, end
				bestBytes, bestGroups = moved, groups
			}
		}
	}
	if bestNode == "" {
		e.finish(ds, st, fmt.Errorf("runtime: no alive node can run task %q of %s", item.task, st.name))
		return
	}
	ds.nodeFree[bestNode] = bestEnd
	ds.raiseBacklog(bestEnd)
	if bestGroups > 0 {
		e.trace(Event{
			Kind: EventTransfer, Workflow: st.name, Tenant: st.tenant,
			Task: item.task, Node: bestNode, Time: bestReady,
		})
	}
	if adaptive {
		e.trace(Event{
			Kind: EventVariant, Workflow: st.name, Tenant: st.tenant,
			Task: item.task, Node: bestNode, Time: bestReady, Detail: bestVariant,
		})
	}
	// Transfer stats are accounted on completion (onReport), not here: a
	// placement lost to a node failure is re-placed and would otherwise
	// count its transfers twice.
	e.queues[bestNode].push(execRequest{
		wf: st, task: task, ready: bestReady, restart: item.restart,
		moved: bestBytes, groups: bestGroups, variant: bestVariant,
		estDur: bestEnd - bestReady,
	})
}

// readyOn returns when task's dependency outputs are all available on the
// named node, batching the outputs that live on the same source node into a
// single bulk transfer (one link latency per source instead of one per
// dependency).
func (e *Engine) readyOn(st *wfState, task *TaskSpec, node string) (ready float64, moved int64, groups int) {
	type group struct {
		latest float64
		bytes  int64
		count  int
	}
	bySrc := make(map[string]*group)
	var srcs []string
	for _, d := range task.Deps {
		src := st.locAt[d]
		g := bySrc[src]
		if g == nil {
			g = &group{}
			bySrc[src] = g
			srcs = append(srcs, src)
		}
		if t := st.doneAt[d]; t > g.latest {
			g.latest = t
		}
		g.bytes += st.tasks[d].OutputBytes
		g.count++
	}
	for _, src := range srcs {
		g := bySrc[src]
		arrive := g.latest
		if src != node {
			arrive += e.transferSeconds(src, node, g.bytes, g.count)
			moved += g.bytes
			groups++
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready, moved, groups
}

// transferSeconds prices moving the coalesced outputs of `deps`
// dependencies between two nodes. With a network stack configured
// (EngineConfig.Net) the batch pays one packetized transfer — per-MTU
// framing overhead plus one stack traversal, so coalescing saves the
// (deps-1) extra traversals; otherwise the cluster's flat link model
// applies.
func (e *Engine) transferSeconds(from, to string, bytes int64, deps int) float64 {
	if from == to || deps <= 0 {
		return 0
	}
	if e.cfg.Net != nil {
		return e.cfg.Net.SendSeconds(bytes)
	}
	return e.cluster.BatchTransferSeconds(from, to, bytes, deps)
}

// ---------------------------------------------------------------------------
// node executors

// runExecutor is the goroutine owning one node: it drains the node's work
// queue in FIFO order, advances the node's local modelled clock, claims FPGA
// devices through the platform hooks, and reports completions (or losses,
// once the node's injected failure time passes) back to the dispatcher.
func (e *Engine) runExecutor(n *platform.Node, q *workQueue) {
	defer e.execWG.Done()
	clock := 0.0 // node-local modelled time: earliest idle
	for {
		req, ok := q.pop()
		if !ok {
			return
		}
		start := req.ready
		if clock > start {
			start = clock
		}
		// Execution pays the live cost priced at the task's modelled start:
		// the load and attachment in effect then. An FPGA placement whose
		// device was unplugged by its start falls back to software.
		cost, nominal, onFPGA, devIdx, fellBack := costLive(req.task, n, req.variant, start)
		var end float64
		if onFPGA {
			s, f, ok, err := n.ClaimDeviceAt(devIdx, start, cost)
			if err == nil && ok {
				start, end = s, f
			} else {
				// The claim would queue past a detach (or failed): the
				// device is gone by the time it is this task's turn, so it
				// degrades to the as-submitted software fallback after all.
				onFPGA, fellBack = false, true
				cost, nominal = softwareFallback(req.task, n, start)
				end = start + cost
			}
		} else {
			end = start + cost
		}
		if failAt, failed := n.FailedAt(); failed && end > failAt {
			// The node dies under this task: everything queued here is lost.
			clock = failAt
			e.reportCh <- execReport{
				wf: req.wf, task: req.task, node: n.Name,
				restart: req.restart, lost: true, failAt: failAt,
			}
			continue
		}
		clock = end
		e.reportCh <- execReport{
			wf: req.wf, task: req.task, node: n.Name,
			start: start, end: end, onFPGA: onFPGA, restart: req.restart,
			moved: req.moved, groups: req.groups,
			variant: req.variant, nominal: nominal, fellBack: fellBack,
		}
	}
}

// workQueue is an unbounded FIFO of execution requests. Pushes never block,
// so the dispatcher can never deadlock against a busy executor.
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []execRequest
	closed bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) push(r execRequest) {
	q.mu.Lock()
	q.items = append(q.items, r)
	q.cond.Signal()
	q.mu.Unlock()
}

// steal removes and returns every queued (not yet running) request matching
// the predicate. The dispatcher uses it to invalidate placements when an
// environment event makes them stale — e.g. FPGA work queued on a node
// whose accelerator was just unplugged.
func (q *workQueue) steal(match func(execRequest) bool) []execRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	var stolen []execRequest
	kept := q.items[:0]
	for _, r := range q.items {
		if match(r) {
			stolen = append(stolen, r)
		} else {
			kept = append(kept, r)
		}
	}
	q.items = kept
	return stolen
}

func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pop blocks until an item is available or the queue is closed and drained.
func (q *workQueue) pop() (execRequest, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return execRequest{}, false
	}
	r := q.items[0]
	q.items = q.items[1:]
	return r, true
}
