package runtime

import (
	"strings"
	"testing"

	"everest/internal/hls"
	"everest/internal/platform"
)

func testCluster(nodes int) *platform.Cluster {
	var ns []*platform.Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, platform.NewNode(nodeName(i), platform.XeonModel(), platform.AlveoU55C()))
	}
	return platform.NewCluster(ns...)
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

func chainWorkflow(t *testing.T, n int) *Workflow {
	t.Helper()
	w := NewWorkflow()
	for i := 0; i < n; i++ {
		spec := TaskSpec{Name: taskName(i), Flops: 1e9, InputBytes: 1 << 20, OutputBytes: 1 << 20}
		if i > 0 {
			spec.Deps = []string{taskName(i - 1)}
		}
		if err := w.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func forkJoinWorkflow(t *testing.T, width int) *Workflow {
	t.Helper()
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "src", Flops: 1e8, OutputBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var mids []string
	for i := 0; i < width; i++ {
		name := "mid" + taskName(i)
		if err := w.Submit(TaskSpec{Name: name, Deps: []string{"src"},
			Flops: 2e9, InputBytes: 1 << 20, OutputBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		mids = append(mids, name)
	}
	if err := w.Submit(TaskSpec{Name: "sink", Deps: mids, Flops: 1e8, InputBytes: 1 << 22}); err != nil {
		t.Fatal(err)
	}
	return w
}

func taskName(i int) string { return "t" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }

func TestWorkflowValidation(t *testing.T) {
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{}); err == nil {
		t.Error("empty name must fail")
	}
	if err := w.Submit(TaskSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(TaskSpec{Name: "a"}); err == nil {
		t.Error("duplicate must fail")
	}
	if err := w.Submit(TaskSpec{Name: "b", Deps: []string{"zz"}}); err == nil {
		t.Error("unknown dep must fail")
	}
}

func TestPlanChainRespectsDependencies(t *testing.T) {
	w := chainWorkflow(t, 5)
	s := NewScheduler(testCluster(3), platform.NewRegistry(), PolicyHEFT)
	sched, err := s.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	byTask := sched.ByTask()
	for i := 1; i < 5; i++ {
		prev := byTask[taskName(i-1)]
		cur := byTask[taskName(i)]
		if cur.Start < prev.End-1e-12 {
			t.Errorf("task %d starts before its dependency ends: %g < %g", i, cur.Start, prev.End)
		}
	}
	if sched.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestForkJoinUsesMultipleNodes(t *testing.T) {
	w := forkJoinWorkflow(t, 8)
	s := NewScheduler(testCluster(4), platform.NewRegistry(), PolicyHEFT)
	sched, err := s.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[string]bool)
	for _, a := range sched.Assignments {
		used[a.Node] = true
	}
	if len(used) < 3 {
		t.Errorf("fork-join should spread over nodes, used %d", len(used))
	}
	if sched.Transfers == 0 {
		t.Error("cross-node assignment must record transfers")
	}
}

func TestHEFTBeatsFIFOOnHeterogeneousDAG(t *testing.T) {
	// A DAG with a long critical chain and cheap side tasks: HEFT should
	// prioritize the chain, FIFO interleaves and inflates the makespan.
	w := NewWorkflow()
	mustSubmit := func(spec TaskSpec) {
		if err := w.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustSubmit(TaskSpec{Name: "cheap1", Flops: 1e8})
	mustSubmit(TaskSpec{Name: "cheap2", Flops: 1e8})
	mustSubmit(TaskSpec{Name: "chainA", Flops: 4e10})
	mustSubmit(TaskSpec{Name: "chainB", Deps: []string{"chainA"}, Flops: 4e10})
	mustSubmit(TaskSpec{Name: "chainC", Deps: []string{"chainB"}, Flops: 4e10})
	mustSubmit(TaskSpec{Name: "join", Deps: []string{"cheap1", "cheap2", "chainC"}, Flops: 1e8})

	cluster := testCluster(2)
	heft, err := NewScheduler(cluster, platform.NewRegistry(), PolicyHEFT).Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := NewScheduler(cluster, platform.NewRegistry(), PolicyFIFO).Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	if heft.Makespan > fifo.Makespan+1e-9 {
		t.Errorf("HEFT (%g) must not lose to FIFO (%g)", heft.Makespan, fifo.Makespan)
	}
}

func TestLoadBalancing(t *testing.T) {
	// 16 independent equal tasks on 4 nodes must balance well.
	w := NewWorkflow()
	for i := 0; i < 16; i++ {
		if err := w.Submit(TaskSpec{Name: taskName(i), Flops: 1e10}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(testCluster(4), platform.NewRegistry(), PolicyHEFT)
	sched, err := s.Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	if imb := sched.LoadImbalance(); imb > 1.5 {
		t.Errorf("load imbalance %g too high for uniform tasks", imb)
	}
}

func TestFailureRecovery(t *testing.T) {
	w := chainWorkflow(t, 6)
	cluster := testCluster(3)
	base, err := NewScheduler(cluster, platform.NewRegistry(), PolicyHEFT).Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the node that runs the chain midway.
	victim := base.Assignments[2].Node
	failTime := base.Assignments[2].Start + 1e-9

	s := NewScheduler(cluster, platform.NewRegistry(), PolicyHEFT)
	s.Failures = []NodeFailure{{Node: victim, AtTime: failTime}}
	rec, err := s.PlanWithRecovery(w)
	if err != nil {
		t.Fatal(err)
	}
	restarted := 0
	for _, a := range rec.Assignments {
		if a.Restart {
			restarted++
			if a.Node == victim && a.End > failTime {
				t.Errorf("restarted task %s placed on the dead node", a.Task)
			}
		}
	}
	if restarted == 0 {
		t.Error("failure must cause at least one restart")
	}
	if rec.Makespan < base.Makespan {
		t.Error("recovered schedule cannot be faster than failure-free plan")
	}
	if rec.Makespan > base.Makespan*3 {
		t.Errorf("recovery makespan inflation too high: %g vs %g", rec.Makespan, base.Makespan)
	}
}

func TestAllNodesDeadFails(t *testing.T) {
	w := chainWorkflow(t, 2)
	s := NewScheduler(testCluster(1), platform.NewRegistry(), PolicyHEFT)
	s.Failures = []NodeFailure{{Node: nodeName(0), AtTime: 0}}
	if _, err := s.Plan(w); err == nil {
		t.Error("planning with all nodes dead must fail")
	}
}

func fpgaBitstream() platform.Bitstream {
	return platform.Bitstream{
		ID: "bs-ptdr", Kernel: "ptdr", Target: "alveo-u55c",
		Report: hls.Report{
			LatencyCycle: 1 << 18, II: 1, IterLatency: 12,
			Resources: hls.Resources{LUT: 50000, FF: 60000, DSP: 120, BRAM: 64},
			ClockMHz:  300,
		},
		Config: platform.SystemConfig{
			Replicas: 4, BusWidthBits: 512, Lanes: 4, PackedElements: 8,
			DoubleBuffered: true, PLMBytes: 1 << 18,
		},
		ElemBits: 64,
	}
}

func TestFPGAOffloadPreferred(t *testing.T) {
	cluster := testCluster(2)
	reg := platform.NewRegistry()
	bs := fpgaBitstream()
	if err := reg.Put(bs); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Nodes[0].Program(0, bs); err != nil {
		t.Fatal(err)
	}

	w := NewWorkflow()
	if err := w.Submit(TaskSpec{
		Name: "mc", Flops: 5e11, InputBytes: 1 << 24, OutputBytes: 1 << 20,
		NeedsFPGA: true, BitstreamID: "bs-ptdr",
	}); err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(cluster, reg, PolicyHEFT).Plan(w)
	if err != nil {
		t.Fatal(err)
	}
	a := sched.Assignments[0]
	if !a.OnFPGA {
		t.Error("FPGA-requesting task should run on the FPGA node")
	}
	if a.Node != cluster.Nodes[0].Name {
		t.Errorf("task placed on %s, want FPGA node", a.Node)
	}
}

func TestDeploymentStage(t *testing.T) {
	cluster := testCluster(2)
	reg := platform.NewRegistry()
	if err := reg.Put(fpgaBitstream()); err != nil {
		t.Fatal(err)
	}
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "mc", Flops: 1e11}); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{Workflow: "traffic", Nodes: []string{cluster.Nodes[0].Name}}
	d.MarkOffload("mc", "bs-ptdr")
	dt, err := d.Stage(w, cluster, reg)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Error("staging must take modelled time")
	}
	spec, _ := w.Get("mc")
	if !spec.NeedsFPGA || spec.BitstreamID != "bs-ptdr" {
		t.Error("staging must rewrite the task spec")
	}
	js, err := d.JSON()
	if err != nil || !strings.Contains(js, "bs-ptdr") {
		t.Errorf("descriptor JSON wrong: %v %s", err, js)
	}
}

func TestDeploymentErrors(t *testing.T) {
	cluster := testCluster(1)
	reg := platform.NewRegistry()
	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{Nodes: []string{cluster.Nodes[0].Name}}
	d.MarkOffload("zz", "bs")
	if _, err := d.Stage(w, cluster, reg); err == nil {
		t.Error("unknown task must fail")
	}
	d2 := &Deployment{Nodes: []string{cluster.Nodes[0].Name}}
	d2.MarkOffload("a", "missing-bs")
	if _, err := d2.Stage(w, cluster, reg); err == nil {
		t.Error("unknown bitstream must fail")
	}
}

func TestEmptyWorkflowPlan(t *testing.T) {
	s := NewScheduler(testCluster(1), platform.NewRegistry(), PolicyHEFT)
	sched, err := s.Plan(NewWorkflow())
	if err != nil || sched.Makespan != 0 {
		t.Errorf("empty plan: %v %v", sched, err)
	}
}
