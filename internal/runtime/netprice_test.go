package runtime

import (
	"testing"

	"everest/internal/autotuner"
	"everest/internal/netsim"
	"everest/internal/platform"
)

// Packetization-aware transfer pricing (EngineConfig.Net): the engine
// charges netsim.Stack.SendSeconds per coalesced source batch instead of
// the cluster's flat link model.

func TestTransferSecondsStackVsFlat(t *testing.T) {
	cluster := testCluster(2)
	stack := netsim.TCP10G()
	withNet := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Net: &stack})
	flat := NewEngine(cluster, platform.NewRegistry(), EngineConfig{})

	const bytes = int64(1 << 20)
	got := withNet.transferSeconds("a", "b", bytes, 3)
	if want := stack.SendSeconds(bytes); got != want {
		t.Fatalf("stack pricing = %g, want SendSeconds = %g", got, want)
	}
	if got := flat.transferSeconds("a", "b", bytes, 3); got != cluster.BatchTransferSeconds("a", "b", bytes, 3) {
		t.Fatalf("flat pricing diverged from BatchTransferSeconds: %g", got)
	}
	// Same-node and zero-dependency moves are free either way.
	for _, e := range []*Engine{withNet, flat} {
		if e.transferSeconds("a", "a", bytes, 2) != 0 {
			t.Fatal("same-node transfer must be free")
		}
		if e.transferSeconds("a", "b", bytes, 0) != 0 {
			t.Fatal("zero-dependency transfer must be free")
		}
	}
	// The 10G stack with per-MTU framing is strictly slower than the
	// 100G data-center fabric for bulk payloads.
	if got <= cluster.BatchTransferSeconds("a", "b", bytes, 1) {
		t.Fatal("tcp10g should price bulk transfers above the flat 100G fabric")
	}
}

// A cross-node dependency chain pays the stack's latency+framing: the same
// workload served over tcp10g has a strictly longer makespan than over the
// flat fabric, by at least the stack's one-way latency per forced transfer.
func TestEngineMakespanReflectsStackPricing(t *testing.T) {
	run := func(net *netsim.Stack) float64 {
		// One node busy: a two-task chain where the dependent lands on the
		// other node only if the first node is still busy — instead force
		// locality with a fan-out: two heavy roots occupy both nodes, and a
		// join must pull one output across.
		cluster := testCluster(2)
		e := startEngine(t, cluster, EngineConfig{Policy: PolicyHEFT, Net: net})
		w := NewWorkflow()
		for _, spec := range []TaskSpec{
			{Name: "left", Flops: 2e9, OutputBytes: 1 << 22, Cores: 1},
			{Name: "right", Flops: 2e9, OutputBytes: 1 << 22, Cores: 1},
			{Name: "join", Deps: []string{"left", "right"}, Flops: 1e8, InputBytes: 1 << 23, Cores: 1},
		} {
			if err := w.Submit(spec); err != nil {
				t.Fatal(err)
			}
		}
		fut, err := e.Submit(w, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := fut.Wait()
		e.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		if sched.Transfers < 1 {
			t.Fatalf("join must pull at least one output across nodes, got %d transfers", sched.Transfers)
		}
		return sched.Makespan
	}
	stack := netsim.TCP10G()
	slow := run(&stack)
	fast := run(nil)
	if slow <= fast {
		t.Fatalf("tcp10g makespan %g should exceed flat-fabric makespan %g", slow, fast)
	}
	// The gap is at least the packetized cost of the 4 MiB batch minus the
	// flat cost of the same batch.
	minGap := stack.SendSeconds(1<<22) - testCluster(2).BatchTransferSeconds("a", "b", 1<<22, 1)
	if slow-fast < minGap*0.9 {
		t.Fatalf("makespan gap %g smaller than the transfer pricing gap %g", slow-fast, minGap)
	}
}

// Compiler-derived variants attached to a workflow seed the adaptive
// tuner verbatim; the engine does not re-derive seeds from the task specs.
func TestWorkflowVariantsSeedTuner(t *testing.T) {
	cluster := testCluster(2)
	e := startEngine(t, cluster, EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	defer e.Shutdown()

	w := NewWorkflow()
	if err := w.Submit(TaskSpec{Name: "t", Flops: 1e9, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	w.SetVariants([]autotuner.Variant{
		{Name: VariantCPU1, ExpectedMs: 123},
		{Name: VariantCPU16, ExpectedMs: 7},
	})
	st := newWFState(w, "wf", "tenant", &Future{done: make(chan struct{})})
	tn := e.newWorkflowTuner(st)
	if tn == nil {
		t.Fatal("no tuner")
	}
	if got := tn.Expected(VariantCPU1); got != 123 {
		t.Fatalf("cpu1 seed = %g, want the compiled 123", got)
	}
	if got := tn.Best(); got != VariantCPU16 {
		t.Fatalf("best = %s, want cpu16", got)
	}
	if tn.Available(VariantFPGA) {
		t.Fatal("fpga must be absent when the compiled set has no fpga point")
	}

	// A malformed set falls back to engine-derived seeds instead of
	// disabling adaptation.
	w2 := NewWorkflow()
	if err := w2.Submit(TaskSpec{Name: "t", Flops: 1e9, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	w2.SetVariants([]autotuner.Variant{{Name: VariantCPU1, ExpectedMs: -1}})
	st2 := newWFState(w2, "wf2", "tenant", &Future{done: make(chan struct{})})
	tn2 := e.newWorkflowTuner(st2)
	if tn2 == nil || !tn2.Available(VariantCPU16) {
		t.Fatal("malformed variant set must fall back to derived seeds")
	}
}
