package runtime

import (
	"testing"

	"everest/internal/platform"
)

// fpgaChain returns a chain of n offloadable tasks submitted for
// single-core software execution (Cores: 1), so the as-submitted fallback
// is painful (~15s) while cpu16 (~1s) and the fpga kernel (~ms) are fast —
// the variant spread the tuner navigates.
func fpgaChain(t *testing.T, n int, bitstream string) *Workflow {
	t.Helper()
	w := NewWorkflow()
	for i := 0; i < n; i++ {
		spec := TaskSpec{
			Name: taskName(i), Flops: 5e10, InputBytes: 1 << 22, OutputBytes: 1 << 20,
			Cores: 1, NeedsFPGA: true, BitstreamID: bitstream,
		}
		if i > 0 {
			spec.Deps = []string{taskName(i - 1)}
		}
		if err := w.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// programmedCluster builds a cluster of n nodes with the test bitstream
// programmed on node 0.
func programmedCluster(t *testing.T, n int) (*platform.Cluster, platform.Bitstream) {
	t.Helper()
	cluster := testCluster(n)
	bs := fpgaBitstream()
	if _, err := cluster.Nodes[0].Program(0, bs); err != nil {
		t.Fatal(err)
	}
	return cluster, bs
}

func TestAdaptiveSelectsFPGAVariant(t *testing.T) {
	cluster, bs := programmedCluster(t, 2)
	e := startEngine(t, cluster, EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	fut, err := e.Submit(fpgaChain(t, 4, bs.ID), SubmitOptions{Name: "fpga-chain"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 4 {
		t.Fatalf("got %d assignments, want 4", len(sched.Assignments))
	}
	for _, a := range sched.Assignments {
		if !a.OnFPGA {
			t.Errorf("task %s ran as %v, want FPGA (healthy cluster)", a.Task, a.Node)
		}
	}
	if got := sched.Adapt.VariantCounts[VariantFPGA]; got != 4 {
		t.Errorf("fpga variant count = %d, want 4 (%+v)", got, sched.Adapt.VariantCounts)
	}
	if sched.Adapt.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", sched.Adapt.Fallbacks)
	}
}

// TestAdaptiveReactsToUnplug unplugs the only accelerator after the first
// task completes: the tuner must mask the fpga variant and move the rest of
// the chain to software, never paying the single-core fallback.
func TestAdaptiveReactsToUnplug(t *testing.T) {
	cluster, bs := programmedCluster(t, 2)
	e := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	done := 0
	e.cfg.Trace = func(ev Event) {
		if ev.Kind == EventTaskDone {
			done++
			if done == 1 {
				if err := e.UnplugDevice(cluster.Nodes[0].Name, 0, ev.Time); err != nil {
					t.Error(err)
				}
			}
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(fpgaChain(t, 5, bs.ID), SubmitOptions{Name: "unplugged"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	byTask := sched.ByTask()
	if !byTask[taskName(0)].OnFPGA {
		t.Error("first task must run on the FPGA before the unplug")
	}
	for i := 1; i < 5; i++ {
		if byTask[taskName(i)].OnFPGA {
			t.Errorf("task %d ran on FPGA after the unplug", i)
		}
	}
	// The switch must go to the parallel software variant, not the
	// single-core fallback the static engine would pay.
	if got := sched.Adapt.VariantCounts[VariantCPU16]; got != 4 {
		t.Errorf("cpu16 count = %d, want 4 (%+v)", got, sched.Adapt.VariantCounts)
	}
	if sched.Adapt.Fallbacks != 0 {
		t.Errorf("adaptive run paid %d FPGA fallbacks, want 0", sched.Adapt.Fallbacks)
	}
}

// TestUnplugOfUnprogrammedDeviceIsCapacityNeutral: detaching a device
// that carries no bitstream must not degrade the fpga variant — the chain
// stays on the real accelerator.
func TestUnplugOfUnprogrammedDeviceIsCapacityNeutral(t *testing.T) {
	cluster, bs := programmedCluster(t, 2)
	e := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	done := 0
	e.cfg.Trace = func(ev Event) {
		if ev.Kind == EventTaskDone {
			done++
			if done == 1 {
				// Node 1's device has no bitstream: zero FPGA capacity lost.
				if err := e.UnplugDevice(cluster.Nodes[1].Name, 0, ev.Time); err != nil {
					t.Error(err)
				}
			}
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(fpgaChain(t, 4, bs.ID), SubmitOptions{Name: "neutral"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sched.Assignments {
		if !a.OnFPGA {
			t.Errorf("task %s left the FPGA after a capacity-neutral unplug", a.Task)
		}
	}
}

// TestStaticPaysUnplugFallback is the contrast case: the static engine
// keeps believing the design-time model after the unplug and sends FPGA
// work into the single-core fallback.
func TestStaticPaysUnplugFallback(t *testing.T) {
	cluster, bs := programmedCluster(t, 2)
	e := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Policy: PolicyHEFT})
	done := 0
	e.cfg.Trace = func(ev Event) {
		if ev.Kind == EventTaskDone {
			done++
			if done == 1 {
				if err := e.UnplugDevice(cluster.Nodes[0].Name, 0, ev.Time); err != nil {
					t.Error(err)
				}
			}
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(fpgaChain(t, 4, bs.ID), SubmitOptions{Name: "static"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Adapt.Fallbacks == 0 {
		t.Error("static engine must record FPGA fallbacks after the unplug")
	}
	if len(sched.Adapt.VariantCounts) != 0 {
		t.Errorf("static engine must not record variants: %+v", sched.Adapt.VariantCounts)
	}
}

// TestAdaptivePlugRestoresFPGA replugs the device mid-chain: the fpga
// variant must come back.
func TestAdaptivePlugRestoresFPGA(t *testing.T) {
	cluster, bs := programmedCluster(t, 2)
	e := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	done := 0
	e.cfg.Trace = func(ev Event) {
		if ev.Kind != EventTaskDone {
			return
		}
		done++
		var err error
		switch done {
		case 1:
			err = e.UnplugDevice(cluster.Nodes[0].Name, 0, ev.Time)
		case 3:
			err = e.PlugDevice(cluster.Nodes[0].Name, 0, ev.Time)
		}
		if err != nil {
			t.Error(err)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(fpgaChain(t, 6, bs.ID), SubmitOptions{Name: "roundtrip"})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fut.Wait()
	e.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	byTask := sched.ByTask()
	if byTask[taskName(2)].OnFPGA {
		t.Error("mid-chain task must run in software while unplugged")
	}
	if !byTask[taskName(5)].OnFPGA {
		t.Error("final task must return to the FPGA after the replug")
	}
}

// TestAdaptiveAvoidsSlowNode loads one node 8x: the monitor learns the
// ratio from the first completion and the rest of the chain migrates,
// while the static engine keeps trusting the nominal model.
func TestAdaptiveAvoidsSlowNode(t *testing.T) {
	run := func(adaptive bool) *Schedule {
		cluster := testCluster(2)
		e := startEngine(t, cluster, EngineConfig{Policy: PolicyHEFT, Adaptive: adaptive})
		if err := e.SetNodeSlowdown(cluster.Nodes[0].Name, 8, 0); err != nil {
			t.Fatal(err)
		}
		w := NewWorkflow()
		for i := 0; i < 6; i++ {
			spec := TaskSpec{Name: taskName(i), Flops: 3e10, InputBytes: 1 << 20, OutputBytes: 1 << 20}
			if i > 0 {
				spec.Deps = []string{taskName(i - 1)}
			}
			if err := w.Submit(spec); err != nil {
				t.Fatal(err)
			}
		}
		fut, err := e.Submit(w, SubmitOptions{Name: "slow-chain"})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := fut.Wait()
		e.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}
	static := run(false)
	adaptive := run(true)
	if adaptive.Makespan >= static.Makespan {
		t.Fatalf("adaptive %.3gs must beat static %.3gs on a loaded node",
			adaptive.Makespan, static.Makespan)
	}
	if speedup := static.Makespan / adaptive.Makespan; speedup < 1.3 {
		t.Errorf("speedup %.2fx, want >= 1.3x", speedup)
	}
}

func TestEngineControlErrors(t *testing.T) {
	cluster := testCluster(1)
	e := startEngine(t, cluster, EngineConfig{})
	if err := e.UnplugDevice("ghost", 0, 0); err == nil {
		t.Error("unknown node must error")
	}
	if err := e.UnplugDevice(cluster.Nodes[0].Name, 9, 0); err == nil {
		t.Error("unknown device must error")
	}
	if err := e.PlugDevice("ghost", 0, 0); err == nil {
		t.Error("unknown node must error on plug")
	}
	if err := e.SetNodeSlowdown("ghost", 2, 0); err == nil {
		t.Error("unknown node must error on slowdown")
	}
	e.Shutdown()
	// Control calls after shutdown must not hang (events are dropped).
	for i := 0; i < 300; i++ {
		if err := e.SetNodeSlowdown(cluster.Nodes[0].Name, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRedundantPlugUnplugAreNoOps: control calls that do not change the
// device's attachment state must emit no dispatcher events — a VF plugged
// on an always-online device must not reset learned fpga drift, and a
// second unplug must not double-degrade tuners.
func TestRedundantPlugUnplugAreNoOps(t *testing.T) {
	cluster, _ := programmedCluster(t, 1)
	e := NewEngine(cluster, platform.NewRegistry(), EngineConfig{Adaptive: true})
	node := cluster.Nodes[0].Name
	// The engine is not started, so control messages stay queued and can
	// be inspected directly.
	if err := e.PlugDevice(node, 0, 0); err != nil {
		t.Fatal(err)
	}
	if msgs := e.takeCtrl(); len(msgs) != 0 {
		t.Fatalf("plug of attached device queued %d events, want 0", len(msgs))
	}
	if err := e.UnplugDevice(node, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := e.UnplugDevice(node, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if msgs := e.takeCtrl(); len(msgs) != 1 {
		t.Fatalf("double unplug queued %d events, want 1", len(msgs))
	}
	if cluster.Nodes[0].DeviceOnline(0) {
		t.Fatal("device must be detached")
	}
	if err := e.PlugDevice(node, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if msgs := e.takeCtrl(); len(msgs) != 1 {
		t.Fatal("replug of a detached device must queue one event")
	}
}

func TestWorkQueueSteal(t *testing.T) {
	q := newWorkQueue()
	st := &wfState{}
	mk := func(name, variant string) execRequest {
		return execRequest{wf: st, task: &TaskSpec{Name: name}, variant: variant}
	}
	q.push(mk("a", VariantFPGA))
	q.push(mk("b", VariantCPU16))
	q.push(mk("c", VariantFPGA))
	stolen := q.steal(func(r execRequest) bool { return r.variant == VariantFPGA })
	if len(stolen) != 2 || stolen[0].task.Name != "a" || stolen[1].task.Name != "c" {
		t.Fatalf("stolen = %v", stolen)
	}
	r, ok := q.pop()
	if !ok || r.task.Name != "b" {
		t.Fatalf("queue after steal: %v %v", r, ok)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("drained queue must report closed")
	}
}

// TestMonitorLearnsThroughEngine checks the learning path end to end: a
// slowed node's estimate converges from real completions.
func TestMonitorLearnsThroughEngine(t *testing.T) {
	cluster := testCluster(2)
	e := startEngine(t, cluster, EngineConfig{Policy: PolicyHEFT, Adaptive: true})
	slow := cluster.Nodes[0].Name
	if err := e.SetNodeSlowdown(slow, 6, 0); err != nil {
		t.Fatal(err)
	}
	fut, err := e.Submit(chainWorkflow(t, 6), SubmitOptions{Name: "learn"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	// At least one task landed on the slow node before the monitor learned;
	// its estimate must have moved well above nominal.
	if est := e.Monitor().SlowdownEstimate(slow); est < 2 {
		t.Errorf("slowdown estimate for %s = %g, want >= 2", slow, est)
	}
}
