package runtime

import (
	"testing"

	"everest/internal/netsim"
)

// The PR-6 event core promises an allocation-free steady state: once an
// engine is running, the per-event work — pricing a transfer, placing a
// ready task, absorbing a completion report — must not touch the heap.
// These budgets are enforced by `go test ./...`, so a refactor that
// reintroduces a per-event allocation (a map rebuild, a sort scratch
// slice, an escaping closure) fails CI rather than silently eroding the
// wall-clock wins measured by BenchmarkSimulatorSpeed.

// stoppedEngine starts an engine — building the node index tables and work
// queues — and immediately shuts the dispatcher down, leaving the test
// goroutine as the sole owner of the dispatch structures. That mirrors the
// dispatcher's own single-owner discipline, so driving place/onReport
// directly is exactly the production calling convention.
func stoppedEngine(t *testing.T, nodes int, cfg EngineConfig) *Engine {
	t.Helper()
	e := startEngine(t, testCluster(nodes), cfg)
	e.Shutdown()
	return e
}

func assertAllocs(t *testing.T, what string, budget float64, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got > budget {
		t.Errorf("%s allocates %.1f per run, budget %.0f", what, got, budget)
	}
}

func TestTransferSecondsAllocFree(t *testing.T) {
	flat := stoppedEngine(t, 3, EngineConfig{})
	assertAllocs(t, "transferSeconds (flat fabric)", 0, func() {
		flat.transferSeconds(nodeName(0), nodeName(1), 1<<20, 3)
	})
	stack := netsim.TCP10G()
	packet := stoppedEngine(t, 3, EngineConfig{Net: &stack})
	assertAllocs(t, "transferSeconds (packetized stack)", 0, func() {
		packet.transferSeconds(nodeName(0), nodeName(1), 1<<20, 3)
	})
}

// TestPlaceAllocFree drives the placement hot path: task 0 exercises the
// bare candidate scan, task 1 adds the dependency-grouping and transfer-
// pricing loops. Each run resets the bookkeeping a placement mutates so
// every iteration sees the same steady state.
func TestPlaceAllocFree(t *testing.T) {
	e := stoppedEngine(t, 3, EngineConfig{Policy: PolicyHEFT})
	ds := e.newDispatchState()
	st := newWFState(chainWorkflow(t, 2), "wf0", "default", &Future{done: make(chan struct{})})
	e.onSubmit(ds, st)
	for { // consume the initial ready items; the test re-places by hand
		item, ok := e.nextFair(ds)
		if !ok {
			break
		}
		item.wf.queuedRefs--
	}
	st.doneAt[0], st.locAt[0] = 0.01, 0 // pretend task 0 finished on node 0
	reset := func() {
		st.inflight = 0
		for _, q := range e.queues {
			q.items, q.head = q.items[:0], 0
		}
		ds.heap.Reset()
		for i := range ds.inHeap {
			ds.inHeap[i] = false
			ds.nodeFree[i] = 0
		}
	}
	for tid, what := range map[int32]string{0: "place (no deps)", 1: "place (grouped transfers)"} {
		item := readyItem{wf: st, task: tid}
		assertAllocs(t, what, 0, func() {
			e.place(ds, item)
			reset()
		})
	}
}

// TestOnReportAllocFree drives the completion hot path for a software
// task: monitor feedback, ordered schedule insertion, and waking the
// dependent task. The report for task 0 of a 2-task chain never finishes
// the workflow, so each run restores the pre-completion state.
func TestOnReportAllocFree(t *testing.T) {
	e := stoppedEngine(t, 2, EngineConfig{})
	ds := e.newDispatchState()
	st := newWFState(chainWorkflow(t, 2), "wf0", "default", &Future{done: make(chan struct{})})
	e.onSubmit(ds, st)
	rep := execReport{wf: st, tidx: 0, node: 0, start: 0, end: 0.01, nominal: 0.008}
	assertAllocs(t, "onReport (software completion)", 0, func() {
		st.inflight = 1
		e.onReport(ds, rep)
		// Restore: the completion consumed a pending task, readied its
		// child, and appended one assignment.
		st.pending++
		ds.pendingTotal++
		st.remaining[1] = 1
		st.doneAt[0], st.locAt[0] = 0, -1
		st.sched.Assignments = st.sched.Assignments[:0]
		for {
			item, ok := e.nextFair(ds)
			if !ok {
				break
			}
			item.wf.queuedRefs--
		}
	})
}
