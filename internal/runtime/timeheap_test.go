package runtime

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTimeHeapTieBreak table-tests the deterministic total order the event
// core depends on: modelled time first, then workflow id, then task name,
// then sequence number. Each case pushes its items in every rotation of
// the given order and asserts the pop sequence never changes — insertion
// order must be invisible, or trace byte-identity across GOMAXPROCS breaks.
func TestTimeHeapTieBreak(t *testing.T) {
	cases := []struct {
		name  string
		items []TimeItem
		want  []int // indices into items, expected pop order
	}{
		{
			name: "time dominates",
			items: []TimeItem{
				{Time: 3, WF: "a", Seq: 0},
				{Time: 1, WF: "z", Seq: 9},
				{Time: 2, WF: "m", Seq: 5},
			},
			want: []int{1, 2, 0},
		},
		{
			name: "equal time falls to workflow id",
			items: []TimeItem{
				{Time: 1, WF: "wf02", Task: "a", Seq: 0},
				{Time: 1, WF: "wf00", Task: "z", Seq: 2},
				{Time: 1, WF: "wf01", Task: "m", Seq: 1},
			},
			want: []int{1, 2, 0},
		},
		{
			name: "equal time+wf falls to task name",
			items: []TimeItem{
				{Time: 2, WF: "wf00", Task: "reduce", Seq: 0},
				{Time: 2, WF: "wf00", Task: "load", Seq: 1},
				{Time: 2, WF: "wf00", Task: "map", Seq: 2},
			},
			want: []int{1, 2, 0},
		},
		{
			name: "full tie falls to sequence",
			items: []TimeItem{
				{Time: 0.5, WF: "wf00", Task: "t", Seq: 3},
				{Time: 0.5, WF: "wf00", Task: "t", Seq: 1},
				{Time: 0.5, WF: "wf00", Task: "t", Seq: 2},
			},
			want: []int{1, 2, 0},
		},
		{
			name: "empty wf/task sort before named (closed-loop picker shape)",
			items: []TimeItem{
				{Time: 1, WF: "wf00", Seq: 0},
				{Time: 1, Seq: 7},
				{Time: 1, Seq: 4},
			},
			want: []int{2, 1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for rot := 0; rot < len(tc.items); rot++ {
				h := NewTimeHeap(len(tc.items))
				for i := 0; i < len(tc.items); i++ {
					h.Push(tc.items[(i+rot)%len(tc.items)])
				}
				for k, wi := range tc.want {
					got := h.PopMin()
					if got != tc.items[wi] {
						t.Fatalf("rotation %d pop %d = %+v, want items[%d] %+v",
							rot, k, got, wi, tc.items[wi])
					}
				}
				if h.Len() != 0 {
					t.Fatalf("rotation %d: %d items left after draining", rot, h.Len())
				}
			}
		})
	}
}

// TestTimeHeapMatchesSort cross-checks the 4-ary sift logic against
// sort.Slice over the same total order on randomized interleaved
// push/pop traffic, including Reset reuse of the backing storage.
func TestTimeHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := NewTimeHeap(8)
	for round := 0; round < 20; round++ {
		h.Reset()
		n := 1 + rng.Intn(64)
		items := make([]TimeItem, n)
		for i := range items {
			items[i] = TimeItem{
				Time: float64(rng.Intn(4)), // few buckets => many ties
				WF:   string(rune('a' + rng.Intn(3))),
				Task: string(rune('p' + rng.Intn(3))),
				Seq:  i,
			}
			h.Push(items[i])
		}
		sort.Slice(items, func(i, j int) bool { return timeLess(items[i], items[j]) })
		if h.Peek() != items[0] {
			t.Fatalf("round %d: Peek = %+v, want %+v", round, h.Peek(), items[0])
		}
		for i, want := range items {
			if got := h.PopMin(); got != want {
				t.Fatalf("round %d pop %d = %+v, want %+v", round, i, got, want)
			}
		}
	}
}

// TestRebuildHeap covers the recovery path queue steals leave behind: a
// steal (device unplug) invalidates an unknown subset of heap entries, so
// the dispatcher rebuilds the head heap from the queues. The rebuilt heap
// must track exactly the non-empty queues, order heads by modelled start
// with the node-index tie-break, and respect each node's realized clock.
func TestRebuildHeap(t *testing.T) {
	e := stoppedEngine(t, 3, EngineConfig{})
	ds := e.newDispatchState()
	st := newWFState(chainWorkflow(t, 3), "wf0", "default", &Future{done: make(chan struct{})})
	// Stale pre-steal heap content that the rebuild must discard.
	ds.heap.Push(TimeItem{Time: 99, Seq: 1})
	ds.inHeap[1] = true
	ds.heapDirty = true
	e.queues[0].push(execRequest{wf: st, task: &st.specs[0], tidx: 0, ready: 2.0})
	e.queues[2].push(execRequest{wf: st, task: &st.specs[1], tidx: 1, ready: 0.5})
	ds.clock[2] = 1.0 // realized clock floors the head's start time
	e.rebuildHeap(ds)
	if ds.heap.Len() != 2 {
		t.Fatalf("heap holds %d entries, want 2", ds.heap.Len())
	}
	if !ds.inHeap[0] || ds.inHeap[1] || !ds.inHeap[2] {
		t.Fatalf("inHeap = %v, want [true false true]", ds.inHeap)
	}
	top := ds.heap.PopMin()
	if top.Seq != 2 || top.Time != 1.0 {
		t.Fatalf("min head = %+v, want node 2 at clock-floored time 1.0", top)
	}
	next := ds.heap.PopMin()
	if next.Seq != 0 || next.Time != 2.0 {
		t.Fatalf("second head = %+v, want node 0 at time 2.0", next)
	}
}
