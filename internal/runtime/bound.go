package runtime

import (
	"fmt"

	"everest/internal/netsim"
	"everest/internal/platform"
)

// This file derives the proven service-time bound guaranteed-class
// admission (internal/fleet) checks against a deadline: a modelled worst
// case for serving one workflow alone on a cluster, composed purely from
// schedule-derived and platform-model quantities — no observed latencies.
//
// Soundness rests on how the engine actually prices and runs work:
//
//   - Software executions (cpu1/cpu16/as-submitted fallback) cost
//     RunCPU(flops, bytes, cores) x SlowdownAt(start). CPUModel.TimeSeconds
//     is non-increasing in cores, so one core on the slowest alive node is
//     the worst case, and the load factor is capped by the fleet's
//     SlowdownCap contract (validated against the scripted fault events).
//   - FPGA executions cost platform.Execute on the programmed device with
//     the engine's fixed Batches:4 workload and take no load multiplier;
//     platform.ExecuteBound dominates Execute on every device, so the max
//     over devices that can host the bitstream bounds any placement.
//   - Placement estimates never exceed these either: the dispatcher prices
//     software candidates with the monitor's slowdown estimate (an EWMA of
//     observed factors, hence <= the cap) and picks the end-minimizing
//     variant, so tuner drift on the fpga estimate cannot push the chosen
//     end past the cpu1 candidate on the same node.
//   - Dependency transfers are batched per source node; the batched cost of
//     a group never exceeds the sum of its single-dependency transfers
//     (the link latency is paid once instead of per dependency), so
//     pricing every dependency as its own worst-case transfer is an upper
//     bound on whatever grouping the placement produces.
//
// Summing the per-task worst cases over the whole DAG is then a bound on
// the serve-alone makespan delta: the engine is work-conserving, and with
// the fleet's serial per-site worker at most one workflow occupies the
// engine at a time, so every stall a task can suffer (node clocks, device
// claims, transfers) traces back to another task of the same workflow.

// BoundOptions parameterizes ServiceBound.
type BoundOptions struct {
	// SlowdownCap is the contractual ceiling on any node's CPU load factor.
	// Values below 1 are treated as 1 (no slowdown).
	SlowdownCap float64
	// Net, when set, prices inter-node dependency transfers (the engine's
	// EngineConfig.Net semantics); nil uses the cluster fabric.
	Net *netsim.Stack
}

// ServiceBound returns the modelled worst-case makespan of serving w alone
// on cluster c: the sum over tasks of the worst per-task execution cost
// (slowest single-core software path under the slowdown cap, or the
// schedule's WCET on the slowest device that can host the task's
// bitstream, whichever is larger) plus the worst-case cost of shipping
// each dependency across the fabric. It errors when the cluster has no
// alive node to run a task.
func ServiceBound(w *Workflow, c *platform.Cluster, reg *platform.Registry, opt BoundOptions) (float64, error) {
	if w == nil {
		return 0, fmt.Errorf("runtime: nil workflow")
	}
	slowCap := opt.SlowdownCap
	if slowCap < 1 {
		slowCap = 1
	}
	total := 0.0
	var err error
	w.Range(func(t *TaskSpec) bool {
		exec, terr := taskBound(t, c, reg, slowCap)
		if terr != nil {
			err = terr
			return false
		}
		xfer := 0.0
		for _, dep := range t.Deps {
			d, ok := w.Get(dep)
			if !ok || d.OutputBytes <= 0 {
				continue
			}
			if opt.Net != nil {
				xfer += opt.Net.SendSeconds(d.OutputBytes)
			} else {
				xfer += c.Network.TransferSeconds(d.OutputBytes)
			}
		}
		total += exec + xfer
		return true
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// taskBound prices the worst-case execution of one task: every cost path
// the engine can take (software on any core count under any capped load,
// or the kernel's WCET on any device the bitstream fits) is dominated.
func taskBound(t *TaskSpec, c *platform.Cluster, reg *platform.Registry, slowCap float64) (float64, error) {
	bytes := t.TotalBytes()
	worst := -1.0
	for _, n := range c.Nodes {
		if _, failed := n.FailedAt(); failed {
			continue
		}
		if v := n.RunCPU(t.Flops, bytes, 1) * slowCap; v > worst {
			worst = v
		}
	}
	if worst < 0 {
		return 0, fmt.Errorf("runtime: no alive node can bound task %q", t.Name)
	}
	if t.NeedsFPGA && t.BitstreamID != "" {
		if bs, err := reg.Get(t.BitstreamID); err == nil {
			wl := platform.Workload{BytesIn: t.InputBytes, BytesOut: t.OutputBytes, Batches: 4}
			for _, n := range c.Nodes {
				for _, d := range n.Devices {
					tl, err := platform.ExecuteBound(d, bs, wl)
					if err != nil {
						continue // does not fit on this device
					}
					if tl.Total > worst {
						worst = tl.Total
					}
				}
			}
		}
	}
	return worst, nil
}
