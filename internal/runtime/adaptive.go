package runtime

import (
	"fmt"

	"everest/internal/autotuner"
	"everest/internal/platform"
)

// This file closes the autotuner→engine→virt loop (paper §VI): the engine
// reacts to the live environment instead of executing a static plan.
//
// Three layers cooperate. The platform monitors (platform.Monitor) learn
// each node's real load from observed/nominal latency ratios. A per-
// workflow autotuner.Tuner holds the expected latency of each
// implementation variant (cpu1 / cpu16 / fpga) and tracks it from
// completions, so selection follows the environment. And SR-IOV hot-plug
// events from the virtualization layer arrive through the engine control
// API (UnplugDevice / PlugDevice / SetNodeSlowdown): they flip platform
// attachment state immediately — executors fall back to software for FPGA
// work that can no longer reach its device — and tell the dispatcher to
// invalidate queued FPGA placements on the affected node and degrade the
// fpga variant in every active tuner.
//
// The static engine pays the same faults but never consults any of this:
// the gap between the two under induced faults is what
// BenchmarkAdaptivePlacement measures.

// Implementation variants of one task (the paper's E7 knob values).
const (
	// VariantCPU1 is the single-core software fallback.
	VariantCPU1 = "cpu1"
	// VariantCPU16 is the parallel software implementation.
	VariantCPU16 = "cpu16"
	// VariantFPGA is the offloaded kernel.
	VariantFPGA = "fpga"
)

// cpu16Cores is the core count of the parallel software variant.
const cpu16Cores = 16

// designTime passed as `at` selects the design-time view of attachment
// (faults invisible — the serial planner and static estimates).
const designTime = -1.0

// fpgaCostOn returns the kernel execution time of task t on a device of
// node n programmed with the task's bitstream and attached at modelled
// time `at`.
func fpgaCostOn(t *TaskSpec, n *platform.Node, at float64) (cost float64, devIdx int, ok bool) {
	if !t.NeedsFPGA || t.BitstreamID == "" {
		return 0, -1, false
	}
	for idx := range n.Devices {
		if at != designTime && !n.DeviceOnlineAt(idx, at) {
			continue
		}
		if bs, loaded := n.Programmed(idx); loaded && bs.ID == t.BitstreamID {
			tl, err := n.RunKernel(idx, platform.Workload{
				BytesIn: t.InputBytes, BytesOut: t.OutputBytes, Batches: 4,
			})
			if err == nil {
				return tl.Total, idx, true
			}
		}
	}
	return 0, -1, false
}

// costLive returns what executing task t on node n costs for a requested
// variant ("" = as submitted, the static engine's path), priced at the
// task's modelled start time `at`: the load factor and device attachment
// in effect *then* apply, so environment events never act retroactively on
// modelled-earlier work regardless of wall-clock interleaving. It also
// returns the design-time cost of what actually ran (for load learning)
// and whether an FPGA placement fell back to software because its device
// was detached. The fallback model is uniform: a detached device degrades
// the task to its as-submitted software execution (TaskSpec.Cores),
// whichever path detects the detach.
func costLive(t *TaskSpec, n *platform.Node, variant string, at float64) (cost, nominal float64, onFPGA bool, devIdx int, fellBack bool) {
	bytes := t.TotalBytes()
	switch variant {
	case VariantFPGA:
		if c, idx, ok := fpgaCostOn(t, n, at); ok {
			return c, c, true, idx, false
		}
		// Device gone: the placement degrades to the software fallback.
		cost, nominal = softwareFallback(t, n, at)
		return cost, nominal, false, -1, true
	case VariantCPU16:
		nominal = n.RunCPU(t.Flops, bytes, cpu16Cores)
		return n.RunCPULiveAt(t.Flops, bytes, cpu16Cores, at), nominal, false, -1, false
	case VariantCPU1:
		nominal = n.RunCPU(t.Flops, bytes, 1)
		return n.RunCPULiveAt(t.Flops, bytes, 1, at), nominal, false, -1, false
	default: // as submitted
		if c, idx, ok := fpgaCostOn(t, n, at); ok {
			return c, c, true, idx, false
		}
		// Fell back iff the bitstream is programmed here but the device was
		// detached — the static engine keeps sending FPGA work into this.
		fellBack = bitstreamProgrammed(t, n)
		cost, nominal = softwareFallback(t, n, at)
		return cost, nominal, false, -1, fellBack
	}
}

// softwareFallback prices the as-submitted software execution a detached
// device degrades a task to, at modelled start `at` — the one fallback
// model shared by every path that detects a detach (costLive above and the
// executor's claim-time check).
func softwareFallback(t *TaskSpec, n *platform.Node, at float64) (cost, nominal float64) {
	bytes := t.TotalBytes()
	return n.RunCPULiveAt(t.Flops, bytes, t.Cores, at), n.RunCPU(t.Flops, bytes, t.Cores)
}

// bitstreamProgrammed reports whether any device of n carries the task's
// bitstream (attachment ignored; no timeline computation).
func bitstreamProgrammed(t *TaskSpec, n *platform.Node) bool {
	if !t.NeedsFPGA || t.BitstreamID == "" {
		return false
	}
	for idx := range n.Devices {
		if bs, loaded := n.Programmed(idx); loaded && bs.ID == t.BitstreamID {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// environment control API

// EnvEventKind classifies scripted environment events.
type EnvEventKind int

// Scripted environment event kinds.
const (
	// EnvUnplug detaches a device from its modelled time onward.
	EnvUnplug EnvEventKind = iota
	// EnvPlug reattaches a device from its modelled time onward.
	EnvPlug
	// EnvSlowdown changes a node's CPU load factor from its modelled time.
	EnvSlowdown
)

// EnvEvent is one environment change scripted at engine start
// (EngineConfig.Events): the condition timeline is written before any task
// is placed, so executors price every task against it deterministically —
// the At-and-later modelled world pays the fault, earlier work does not —
// with no dependence on wall-clock event ordering. Use the engine control
// API (UnplugDevice / PlugDevice / SetNodeSlowdown) instead for events
// that must surprise a running engine.
type EnvEvent struct {
	Kind   EnvEventKind
	Node   string
	Device int     // EnvUnplug / EnvPlug
	Factor float64 // EnvSlowdown
	At     float64 // modelled time the change takes effect
}

// applyEnvEvents writes the scripted condition timelines (engine Start).
func (e *Engine) applyEnvEvents() {
	for _, ev := range e.cfg.Events {
		n := e.cluster.FindNode(ev.Node)
		if n == nil {
			continue
		}
		switch ev.Kind {
		case EnvUnplug:
			_, _ = n.SetDeviceOffline(ev.Device, true, ev.At)
		case EnvPlug:
			_, _ = n.SetDeviceOffline(ev.Device, false, ev.At)
		case EnvSlowdown:
			n.SetSlowdown(ev.Factor, ev.At)
		}
	}
}

// ctrlKind classifies environment events entering the dispatcher.
type ctrlKind int

const (
	ctrlUnplug ctrlKind = iota
	ctrlPlug
	ctrlSlow
)

// ctrlMsg is one environment event. Platform state is already flipped by
// the time the dispatcher sees it; the message drives the scheduling-side
// reaction (invalidation, tuner degradation, tracing).
type ctrlMsg struct {
	kind   ctrlKind
	node   string
	dev    int
	factor float64
	at     float64 // modelled time of the event
}

// sendCtrl enqueues an environment event for the dispatcher. It never
// blocks, whatever the queue depth and whichever goroutine calls it —
// including the dispatcher itself via a fault-script trace callback — and
// events are delivered in enqueue order.
func (e *Engine) sendCtrl(m ctrlMsg) {
	e.ctrlMu.Lock()
	e.ctrlQ = append(e.ctrlQ, m)
	e.ctrlMu.Unlock()
	select {
	case e.ctrlSig <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// takeCtrl drains the control queue in order.
func (e *Engine) takeCtrl() []ctrlMsg {
	e.ctrlMu.Lock()
	q := e.ctrlQ
	e.ctrlQ = nil
	e.ctrlMu.Unlock()
	return q
}

// UnplugDevice detaches device dev of a node at modelled time `at` (the
// SR-IOV VF unplug of §VI-B surfaced as an engine event). Running and
// queued FPGA work on that node degrades to software; in adaptive mode the
// dispatcher additionally pulls back queued FPGA placements, reschedules
// them, and degrades the fpga variant in every active workflow's tuner.
// Redundant calls — the device is already detached — change nothing, so
// e.g. a second VM's last-VF unplug cannot double-degrade the tuners.
func (e *Engine) UnplugDevice(node string, dev int, at float64) error {
	n := e.cluster.FindNode(node)
	if n == nil {
		return fmt.Errorf("runtime: unknown node %q", node)
	}
	changed, err := n.SetDeviceOffline(dev, true, at)
	if err != nil {
		return err
	}
	if changed {
		e.sendCtrl(ctrlMsg{kind: ctrlUnplug, node: node, dev: dev, at: at})
	}
	return nil
}

// PlugDevice reattaches device dev of a node at modelled time `at`,
// restoring the fpga variant's availability for active workflows.
// Redundant calls — the device was never detached — change nothing, so a
// VF plugged on an always-online device cannot wipe learned fpga drift.
func (e *Engine) PlugDevice(node string, dev int, at float64) error {
	n := e.cluster.FindNode(node)
	if n == nil {
		return fmt.Errorf("runtime: unknown node %q", node)
	}
	changed, err := n.SetDeviceOffline(dev, false, at)
	if err != nil {
		return err
	}
	if changed {
		e.sendCtrl(ctrlMsg{kind: ctrlPlug, node: node, dev: dev, at: at})
	}
	return nil
}

// SetNodeSlowdown changes a node's CPU load factor at modelled time `at`
// (1 restores nominal speed). Executors pay it immediately; the adaptive
// dispatcher learns it from the latency ratios the monitors observe — the
// event itself only traces.
func (e *Engine) SetNodeSlowdown(node string, factor, at float64) error {
	n := e.cluster.FindNode(node)
	if n == nil {
		return fmt.Errorf("runtime: unknown node %q", node)
	}
	n.SetSlowdown(factor, at)
	e.sendCtrl(ctrlMsg{kind: ctrlSlow, node: node, factor: factor, at: at})
	return nil
}

// onCtrl is the dispatcher's reaction to one environment event.
func (e *Engine) onCtrl(ds *dispatchState, m ctrlMsg) {
	switch m.kind {
	case ctrlSlow:
		e.trace(Event{
			Kind: EventNodeSlowdown, Node: m.node, Time: m.at,
			Detail: fmt.Sprintf("factor=%.3g", m.factor),
		})
	case ctrlUnplug:
		e.trace(Event{
			Kind: EventDeviceUnplug, Node: m.node, Time: m.at,
			Detail: fmt.Sprintf("dev%d", m.dev),
		})
		if !e.cfg.Adaptive || !e.deviceProgrammed(m.node, m.dev) {
			// An unprogrammed device leaving changes no FPGA capacity:
			// nothing to invalidate or degrade.
			return
		}
		// Invalidate queued FPGA placements the node can no longer serve:
		// they would fall back to the slow software path, so pull them
		// back and re-place. Work another attached programmed device on
		// the same node can still run stays queued — as does work whose
		// modelled ready time precedes the detach: it may legitimately run
		// before the fault (non-retroactivity), and the claim-time
		// attachment check resolves the boundary either way.
		if ni, ok := e.nodeIdx[m.node]; ok {
			q, n := e.queues[ni], e.nodes[ni]
			stolen := q.steal(func(r execRequest) bool {
				if r.variant != VariantFPGA {
					return false
				}
				_, _, stillServable := fpgaCostOn(r.task, n, r.ready)
				return !stillServable
			})
			reclaimed := 0.0
			for _, r := range stolen {
				reclaimed += r.estDur
				r.wf.inflight--
				if r.wf.finished {
					e.maybeRecycle(r.wf)
					continue
				}
				r.wf.sched.Adapt.Reschedules++
				e.trace(Event{
					Kind: EventReschedule, Workflow: r.wf.name, Tenant: r.wf.tenant,
					Task: r.task.Name, Node: m.node, Time: m.at, Detail: "device-unplug",
				})
				e.pushReady(ds, r.wf, r.tidx, true, m.at)
			}
			if len(stolen) > 0 {
				// Stolen heads leave stale heap entries behind; rebuild
				// before the next inline execution (rare path).
				ds.heapDirty = true
			}
			// Give the node back the idle time its stolen placements had
			// reserved, so re-placement sees its true availability (floored
			// at the event time; completion reports re-raise it as needed).
			if reclaimed > 0 {
				free := ds.nodeFree[ni] - reclaimed
				if free < m.at {
					free = m.at
				}
				ds.nodeFree[ni] = free
				// The frontier may have shrunk with it; recompute (rare
				// path — only on device-unplug invalidation).
				ds.backlog = 0
				for _, f := range ds.nodeFree {
					if f > ds.backlog {
						ds.backlog = f
					}
				}
			}
		}
		// Degrade the fpga variant in every active tuner: fewer devices
		// remain, and none might. Observations refine this estimate later.
		online := e.onlineFPGADevices()
		for st := range ds.active {
			if st.tuner == nil {
				continue
			}
			if online == 0 {
				st.tuner.SetAvailable(VariantFPGA, false)
			} else {
				st.tuner.Degrade(VariantFPGA, 1+1/float64(online))
			}
		}
	case ctrlPlug:
		e.trace(Event{
			Kind: EventDevicePlug, Node: m.node, Time: m.at,
			Detail: fmt.Sprintf("dev%d", m.dev),
		})
		if !e.cfg.Adaptive || !e.deviceProgrammed(m.node, m.dev) {
			return
		}
		for st := range ds.active {
			if st.tuner != nil {
				st.tuner.SetAvailable(VariantFPGA, true)
				// Undo the unplug-time Degrade: a deselected variant gets
				// no observations, so the penalty would otherwise stick
				// forever. Observations re-learn any remaining degradation.
				st.tuner.ResetExpected(VariantFPGA)
			}
		}
	}
}

// deviceProgrammed reports whether the node's device carries a bitstream —
// only then does its attachment change FPGA capacity.
func (e *Engine) deviceProgrammed(node string, dev int) bool {
	n := e.cluster.FindNode(node)
	if n == nil {
		return false
	}
	_, ok := n.Programmed(dev)
	return ok
}

// onlineFPGADevices counts attached, programmed devices on alive nodes —
// the capacity the fpga variant can still reach cluster-wide.
func (e *Engine) onlineFPGADevices() int {
	online := 0
	for _, n := range e.cluster.Nodes {
		if _, failed := n.FailedAt(); failed {
			continue
		}
		for idx := range n.Devices {
			if _, ok := n.Programmed(idx); ok && n.DeviceOnline(idx) {
				online++
			}
		}
	}
	return online
}

// ---------------------------------------------------------------------------
// adaptive placement

// newWorkflowTuner seeds a variant tuner. Workflows carrying compiler-
// derived operating points (Workflow.SetVariants — the compiled path of
// the SDK loop) seed from those directly: every expected latency then
// traces back to the HLS schedule and the CPU cost model, never to the
// task specs. Otherwise the seeds come from the design-time cost model:
// the workflow's mean task cost per variant on a reference node, with the
// fpga variant present only when some task can actually offload somewhere.
func (e *Engine) newWorkflowTuner(st *wfState) *autotuner.Tuner {
	if len(st.variants) > 0 {
		if tn, err := autotuner.NewTuner(st.variants); err == nil {
			return tn
		}
		// A malformed set falls through to the engine-derived seeds.
	}
	if len(e.cluster.Nodes) == 0 {
		return nil // fall back to static placement (which reports the error)
	}
	ref := e.cluster.Nodes[0]
	var cpu1, cpu16, fpga float64
	nTasks, nFPGA := 0, 0
	// Iterate in submission (index) order: float accumulation order must
	// not vary run to run, or seeds (and placement ties) would either.
	for i := range st.specs {
		t := &st.specs[i]
		bytes := t.TotalBytes()
		cpu1 += ref.RunCPU(t.Flops, bytes, 1)
		cpu16 += ref.RunCPU(t.Flops, bytes, cpu16Cores)
		nTasks++
		for _, n := range e.cluster.Nodes {
			if c, _, ok := fpgaCostOn(t, n, designTime); ok {
				fpga += c
				nFPGA++
				break
			}
		}
	}
	if nTasks == 0 {
		return nil
	}
	ms := func(total float64, n int) float64 {
		v := total / float64(n) * 1000
		if v <= 0 {
			v = 1e-6
		}
		return v
	}
	variants := []autotuner.Variant{
		{Name: VariantCPU1, ExpectedMs: ms(cpu1, nTasks)},
		{Name: VariantCPU16, ExpectedMs: ms(cpu16, nTasks)},
	}
	if nFPGA > 0 {
		variants = append(variants, autotuner.Variant{Name: VariantFPGA, ExpectedMs: ms(fpga, nFPGA)})
	}
	tn, err := autotuner.NewTuner(variants)
	if err != nil {
		return nil // fall back to static placement for this workflow
	}
	return tn
}

// variantsInto appends the implementation variants task may run as,
// filtered by the workflow tuner's availability mask, into the caller's
// scratch buffer (no per-placement allocation).
func (e *Engine) variantsInto(buf []string, st *wfState, t *TaskSpec) []string {
	for _, v := range [...]string{VariantCPU1, VariantCPU16} {
		if st.tuner.Available(v) {
			buf = append(buf, v)
		}
	}
	if t.NeedsFPGA && t.BitstreamID != "" && st.tuner.Available(VariantFPGA) {
		buf = append(buf, VariantFPGA)
	}
	if len(buf) == 0 {
		buf = append(buf, st.tuner.Best()) // graceful degradation
	}
	return buf
}

// Placement itself lives in engine.go place(): one selection loop serves
// both modes, with variantsInto above supplying the adaptive candidates.
// The per-(node, variant) estimate is inlined there: the fpga variant
// scales the per-node kernel time (priced at the modelled ready time — no
// advance knowledge of scripted faults) by the tuner's learned drift, and
// software variants scale the per-node nominal by the monitor's learned
// load — each live signal enters exactly once.
