package runtime

// TimeHeap is a 4-ary indexed min-heap over modelled-time events with a
// total, deterministic order: modelled time first, then workflow id, then
// task name, then sequence number. Every consumer that replaced a linear
// ready-scan with this heap (the engine's inline execution order, the SDK's
// closed-loop client picker) inherits the same tie-break, which is what
// keeps trace streams byte-identical across GOMAXPROCS settings: no pop
// ever depends on insertion racing or map iteration.
//
// A 4-ary layout halves the tree depth of a binary heap, trading slightly
// wider sift-down comparisons for fewer cache lines touched per operation —
// the usual win for small records popped in tight loops.
type TimeHeap struct {
	items []TimeItem
}

// TimeItem is one heap entry. Seq is the final tie-break and should be
// unique per logical entry (a node index, a client index); WF and Task may
// be empty when the caller orders by time and sequence alone.
type TimeItem struct {
	Time float64
	WF   string
	Task string
	Seq  int
}

// timeLess is the deterministic total order: (Time, WF, Task, Seq).
func timeLess(a, b TimeItem) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.WF != b.WF {
		return a.WF < b.WF
	}
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	return a.Seq < b.Seq
}

// NewTimeHeap returns a heap with room for n entries before growing.
func NewTimeHeap(n int) *TimeHeap {
	return &TimeHeap{items: make([]TimeItem, 0, n)}
}

// Len returns the number of queued entries.
func (h *TimeHeap) Len() int { return len(h.items) }

// Reset empties the heap, keeping its backing storage.
func (h *TimeHeap) Reset() { h.items = h.items[:0] }

// Push inserts an entry.
func (h *TimeHeap) Push(it TimeItem) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

// Peek returns the minimum entry without removing it.
func (h *TimeHeap) Peek() TimeItem { return h.items[0] }

// PopMin removes and returns the minimum entry.
func (h *TimeHeap) PopMin() TimeItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *TimeHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !timeLess(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *TimeHeap) siftDown(i int) {
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if timeLess(h.items[c], h.items[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
