// Quickstart: compile an EVEREST Kernel Language kernel, generate the FPGA
// system architecture, and execute it on the simulated Alveo U55C.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"everest/internal/ekl"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/sdk"
	"everest/internal/tensor"
)

const kernelSrc = `
kernel blend {
  # Weighted blend of two sensor fields with clipping: a small example of
  # Einstein-notation style elementwise code.
  input a : [N]
  input b : [N]
  param w = 0.75
  param lo = 0.0
  mix = w * a[i] + (1.0 - w) * b[i]
  out = select(mix[i] < lo, lo, mix[i])
  output out[i]
}
`

func main() {
	// 1. Bind concrete data (shape specialization happens here).
	rng := rand.New(rand.NewSource(42))
	n := 1 << 16
	binding := ekl.Binding{Tensors: map[string]*tensor.Tensor{
		"a": tensor.Random(rng, -1, 2, n),
		"b": tensor.Random(rng, -1, 2, n),
	}}

	// 2. Compile: EKL -> MLIR dialects -> HLS -> Olympus system generation.
	res, err := sdk.Compile(kernelSrc, binding, sdk.CompileOptions{
		Backend: "vitis",
		Olympus: olympus.Options{
			SharePLM: true, DoubleBuffer: true,
			Replicate: true, MaxReplicas: 8, PackData: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d EKL statements -> %d affine loops\n",
		res.Kernel.Name, res.Kernel.SourceLines(), res.Module.CountOps("affine.for"))
	fmt.Printf("HLS: %s\n", res.Report)
	cfg := res.Design.Bitstream.Config
	fmt.Printf("Olympus: %d replicas on %d lanes, packing %d elems/beat, double-buffered=%v\n",
		cfg.Replicas, cfg.Lanes, cfg.PackedElements, cfg.DoubleBuffered)

	// 3. Execute the generated system on the simulated device.
	dev := platform.AlveoU55C()
	wl := platform.Workload{BytesIn: int64(2 * n * 4), BytesOut: int64(n * 4), Batches: 8}
	tl, err := platform.Execute(dev, res.Design.Bitstream, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution on %s: %s\n", dev.Name, tl)
	fmt.Printf("throughput: %.2f GB/s\n", platform.Throughput(wl, tl)/1e9)

	// 4. The interpreter gives the reference result for verification.
	run, err := res.Kernel.Run(binding)
	if err != nil {
		log.Fatal(err)
	}
	out := run.Outputs["out"]
	fmt.Printf("reference output: n=%d mean=%.4f min=%.4f (clipped at 0)\n",
		out.Size(), out.Mean(), out.Min())
}
