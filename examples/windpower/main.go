// Wind power: the renewable-energy prediction use case (§II-B) — Kernel
// Ridge Regression over WRF-style forecasts and farm history, backtested
// against persistence, linear and physical baselines.
//
//	go run ./examples/windpower
package main

import (
	"fmt"
	"log"

	"everest/internal/energy"
)

func main() {
	farm := energy.NewFarm(12)
	fmt.Printf("wind farm: %d turbines x 2 MW, hub-height shear %.2f\n",
		len(farm.Turbines), farm.HeightShear)

	// One synthetic "year" of hourly history (the paper trains on at least
	// one year of data).
	ds := energy.SynthesizeYear(7, 1600, farm)
	fmt.Printf("history: %d hours (train 60%% / test 40%%)\n", len(ds.Samples))

	res, err := energy.Backtest(ds, 0.6, energy.DefaultKRR())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbacktest MAE (kW):")
	fmt.Printf("  kernel ridge      : %8.0f   <- the paper's algorithm\n", res.MAEKRR)
	fmt.Printf("  linear regression : %8.0f\n", res.MAELinear)
	fmt.Printf("  physical curve    : %8.0f\n", res.MAEPhysical)
	fmt.Printf("  persistence (24h) : %8.0f\n", res.MAEPersistence)
	fmt.Printf("\nKRR improves on the physical forecast by %.0f%%\n",
		(1-res.MAEKRR/res.MAEPhysical)*100)

	// A single live prediction.
	krr := energy.DefaultKRR()
	// Refit on everything for the "production" model.
	n := len(ds.Samples)
	lastSample := ds.Samples[n-1]
	if _, err := energy.Backtest(ds, 0.9, krr); err != nil {
		log.Fatal(err)
	}
	pred, err := krr.Predict(energy.Features(farm, lastSample))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatest hour: forecast wind %.1f m/s -> predicted %.0f kW (actual %.0f kW)\n",
		lastSample.ForecastWS, pred, lastSample.PowerKW)
}
