// Wind power: the renewable-energy prediction use case (§II-B) — Kernel
// Ridge Regression over WRF-style forecasts and farm history, backtested
// against persistence, linear and physical baselines.
//
//	go run ./examples/windpower
package main

import (
	"fmt"
	"log"

	"everest/internal/energy"
	"everest/internal/sdk"
	"everest/internal/variants"
)

func main() {
	farm := energy.NewFarm(12)
	fmt.Printf("wind farm: %d turbines x 2 MW, hub-height shear %.2f\n",
		len(farm.Turbines), farm.HeightShear)

	// One synthetic "year" of hourly history (the paper trains on at least
	// one year of data).
	ds := energy.SynthesizeYear(7, 1600, farm)
	fmt.Printf("history: %d hours (train 60%% / test 40%%)\n", len(ds.Samples))

	res, err := energy.Backtest(ds, 0.6, energy.DefaultKRR())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbacktest MAE (kW):")
	fmt.Printf("  kernel ridge      : %8.0f   <- the paper's algorithm\n", res.MAEKRR)
	fmt.Printf("  linear regression : %8.0f\n", res.MAELinear)
	fmt.Printf("  physical curve    : %8.0f\n", res.MAEPhysical)
	fmt.Printf("  persistence (24h) : %8.0f\n", res.MAEPersistence)
	fmt.Printf("\nKRR improves on the physical forecast by %.0f%%\n",
		(1-res.MAEKRR/res.MAEPhysical)*100)

	// A single live prediction.
	krr := energy.DefaultKRR()
	// Refit on everything for the "production" model.
	n := len(ds.Samples)
	lastSample := ds.Samples[n-1]
	if _, err := energy.Backtest(ds, 0.9, krr); err != nil {
		log.Fatal(err)
	}
	pred, err := krr.Predict(energy.Features(farm, lastSample))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatest hour: forecast wind %.1f m/s -> predicted %.0f kW (actual %.0f kW)\n",
		lastSample.ForecastWS, pred, lastSample.PowerKW)

	// The same KRR inference, carried through the SDK loop: the EKL kernel
	// compiled source-to-schedule, with cpu1/cpu16/fpga operating points
	// derived from the HLS schedule and the CPU cost model. This is what
	// the adaptive runtime's tuners are seeded with (basecamp adapt
	// -compiled serves it under faults).
	c, err := variants.CompileExample("windpower", sdk.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled kernel %s (%s frontend): %s\n", c.KernelName, c.Frontend, c.Report)
	fmt.Println("derived operating points:")
	for _, row := range c.Summary() {
		fmt.Printf("  %s\n", row)
	}
	tn, err := c.NewTuner()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuner pick: %s\n", tn.Best())
}
