// Air quality: the industrial-site monitoring use case (§II-C) — Gaussian
// plume ensemble forecast, ML error correction on the three observed
// weather parameters, and the daily emission-reduction decision.
//
//	go run ./examples/airquality
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"everest/internal/airquality"
)

func main() {
	sources := []airquality.Source{
		{X: 0, Y: 0, Height: 40, RateGS: 80},
		{X: 150, Y: 50, Height: 25, RateGS: 30},
	}
	receptors := []airquality.Receptor{
		{X: 800, Y: 0, Z: 1.5},
		{X: 1500, Y: 200, Z: 1.5},
		{X: 2500, Y: -300, Z: 1.5},
	}

	// Control met forecast for a 3-day horizon plus training history.
	hours := 24 * 9
	met := make([]airquality.Weather, hours)
	for h := 0; h < hours; h++ {
		met[h] = airquality.Weather{
			Hour:    h,
			WindMS:  3 + 1.5*math.Sin(2*math.Pi*float64(h)/24),
			WindDir: 0.3 * math.Sin(2*math.Pi*float64(h)/48),
			TempC:   12 + 6*math.Sin(2*math.Pi*float64(h%24-6)/24),
		}
	}

	// Ensemble of perturbed members (§VIII: perturbed weather fields).
	members := airquality.Ensemble(met, 8, 3)
	mean := airquality.EnsembleMeanForecast(sources, receptors, members)
	fmt.Printf("ensemble: %d members, %d forecast hours\n", len(members), len(mean))

	// Synthetic observations with weather-dependent model bias.
	rng := rand.New(rand.NewSource(17))
	observed := make([]float64, hours)
	for i, v := range mean {
		bias := math.Exp(-0.22*(met[i].WindMS-4) + 0.02*(met[i].TempC-12))
		observed[i] = v * bias * math.Exp(rng.NormFloat64()*0.05)
	}

	// Train the corrector on the first 6 days, forecast the rest.
	split := 24 * 6
	corr, err := airquality.FitCorrector(mean[:split], observed[:split], met[:split])
	if err != nil {
		log.Fatal(err)
	}
	var rawErr, corrErr float64
	n := 0
	for i := split; i < hours; i++ {
		if mean[i] <= 0 || observed[i] <= 0 {
			continue
		}
		rawErr += math.Abs(math.Log(mean[i] / observed[i]))
		corrErr += math.Abs(math.Log(corr.Apply(mean[i], met[i]) / observed[i]))
		n++
	}
	fmt.Printf("forecast log-error: raw %.3f -> corrected %.3f (%.0f%% reduction)\n",
		rawErr/float64(n), corrErr/float64(n), (1-corrErr/rawErr)*100)

	// Daily decision for the last 3 days.
	threshold := 0.0
	for _, v := range observed[:split] {
		if v > threshold {
			threshold = v
		}
	}
	threshold *= 0.8
	fmt.Printf("\npollution-peak threshold: %.1f µg/m³\n", threshold)
	for d := split / 24; d < hours/24; d++ {
		day := make([]float64, 24)
		for h := 0; h < 24; h++ {
			day[h] = corr.Apply(mean[d*24+h], met[d*24+h])
		}
		dec := airquality.PlanDay(day, threshold)
		action := "normal operations"
		if dec.Reduce {
			action = "ACTIVATE emission reduction (~20 k€)"
		}
		fmt.Printf("  day %d: predicted max %.1f -> %s\n", d, dec.PredictedMax, action)
	}
}
