// WRF ensemble: the weather-simulation use case (§II-A) — assimilate
// observations, quantify ensemble forecast skill, then build the
// production workflow from the workload registry: the ensemble DAG whose
// radiation stages run the RRTMG kernel compiled source-to-schedule
// (EKL → MLIR → HLS → Olympus), scheduled over the simulated cluster.
//
//	go run ./examples/wrfensemble
package main

import (
	"fmt"
	"log"

	"everest/internal/apps"
	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/wrf"
)

func main() {
	cfg := wrf.Config{NX: 16, NY: 16, NZ: 8, DT: 60, DX: 3000, RadiationEvery: 1}

	// 1. Data assimilation improves the initial condition (§II-A).
	exp, err := wrf.RunAssimilationExperiment(cfg, 10, 8, 40, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D-Var: background RMSE %.3f K -> analysis %.3f K\n",
		exp.BackgroundRMSE, exp.AnalysisRMSE)

	// 2. Ensemble forecast skill.
	ens, err := wrf.RunEnsemble(cfg, 8, 30, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble (%d members): spread %.3f K, mean RMSE %.3f K\n",
		ens.Members, ens.Spread, ens.MeanRMSE)

	// 3. Radiation cost share and Amdahl speedup from FPGA offload.
	s := wrf.NewState(cfg, 11)
	rad := wrf.NewRadiation(11, cfg.NZ)
	s.Run(rad, 10)
	frac := s.RadiationFraction()
	const kernelSpeedup = 8.0
	stepSpeedup := 1 / ((1 - frac) + frac/kernelSpeedup)
	fmt.Printf("radiation: %.0f%% of step cost; FPGA x%.0f -> step speedup %.2fx\n",
		frac*100, kernelSpeedup, stepSpeedup)

	// 4. The production workflow comes from the workload registry: the
	// ensemble DAG whose rad stages carry the compiled Fig. 3 kernel.
	app, err := apps.Build("weather", apps.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	c, _ := app.Kernel("rad0")
	fmt.Printf("registry : %s\n", app.Title)
	fmt.Printf("radiation kernel %s -> bitstream %s (HLS: %s)\n",
		c.KernelName, c.Design.Bitstream.ID, c.Report.String())
	fmt.Println("variants : (derived from the HLS schedule + CPU cost model)")
	for _, row := range c.Summary() {
		fmt.Printf("  %s\n", row)
	}

	// 5. Stage the compiled bitstream and schedule the registry DAG over
	// the simulated cluster.
	sdkInst := sdk.New(sdk.DefaultCluster(4))
	for _, bs := range app.Bitstreams() {
		if err := sdkInst.Registry.Put(bs); err != nil {
			log.Fatal(err)
		}
		for _, node := range []string{"node00", "node01"} {
			if _, err := sdkInst.Deploy(bs.ID, node); err != nil {
				log.Fatal(err)
			}
		}
	}
	w := app.Workflow(0)
	sched, err := sdkInst.NewScheduler(runtime.PolicyHEFT).Plan(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster plan: %d tasks, makespan %.3gs, imbalance %.2f\n",
		len(sched.Assignments), sched.Makespan, sched.LoadImbalance())
	for _, a := range sched.Assignments {
		target := "cpu"
		if a.OnFPGA {
			target = "fpga"
		}
		fmt.Printf("  %-8s %-8s %-5s [%.3g, %.3g]s\n", a.Task, a.Node, target, a.Start, a.End)
	}

	// 6. The workflow carries the merged compiled operating points as its
	// tuner seeds (what adaptive serving consults).
	fmt.Print("tuner seeds:")
	for _, v := range w.Variants() {
		fmt.Printf(" %s=%.4gms", v.Name, v.ExpectedMs)
	}
	fmt.Println()
}
