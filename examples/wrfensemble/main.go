// WRF ensemble: the weather-simulation use case (§II-A) — assimilate
// observations, run an FPGA-accelerated ensemble through the resource
// manager, and let the autotuner pick the radiation variant.
//
//	go run ./examples/wrfensemble
package main

import (
	"fmt"
	"log"

	"everest/internal/autotuner"
	"everest/internal/platform"
	"everest/internal/runtime"
	"everest/internal/sdk"
	"everest/internal/wrf"
)

func main() {
	cfg := wrf.Config{NX: 16, NY: 16, NZ: 8, DT: 60, DX: 3000, RadiationEvery: 1}

	// 1. Data assimilation improves the initial condition (§II-A).
	exp, err := wrf.RunAssimilationExperiment(cfg, 10, 8, 40, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D-Var: background RMSE %.3f K -> analysis %.3f K\n",
		exp.BackgroundRMSE, exp.AnalysisRMSE)

	// 2. Ensemble forecast skill.
	ens, err := wrf.RunEnsemble(cfg, 8, 30, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble (%d members): spread %.3f K, mean RMSE %.3f K\n",
		ens.Members, ens.Spread, ens.MeanRMSE)

	// 3. Radiation cost share and Amdahl speedup from FPGA offload.
	s := wrf.NewState(cfg, 11)
	rad := wrf.NewRadiation(11, cfg.NZ)
	s.Run(rad, 10)
	frac := s.RadiationFraction()
	const kernelSpeedup = 8.0
	stepSpeedup := 1 / ((1 - frac) + frac/kernelSpeedup)
	fmt.Printf("radiation: %.0f%% of step cost; FPGA x%.0f -> step speedup %.2fx\n",
		frac*100, kernelSpeedup, stepSpeedup)

	// 4. Schedule the ensemble over the simulated cluster.
	cluster := sdk.DefaultCluster(4)
	w := runtime.NewWorkflow()
	if err := w.Submit(runtime.TaskSpec{Name: "analysis", Flops: 2e10, OutputBytes: 1 << 24}); err != nil {
		log.Fatal(err)
	}
	var members []string
	for m := 0; m < 8; m++ {
		name := fmt.Sprintf("member%02d", m)
		if err := w.Submit(runtime.TaskSpec{Name: name, Deps: []string{"analysis"},
			Flops: 8e10, InputBytes: 1 << 24, OutputBytes: 1 << 24}); err != nil {
			log.Fatal(err)
		}
		members = append(members, name)
	}
	if err := w.Submit(runtime.TaskSpec{Name: "postproc", Deps: members,
		Flops: 5e9, InputBytes: 1 << 26}); err != nil {
		log.Fatal(err)
	}
	sched, err := runtime.NewScheduler(cluster, platform.NewRegistry(), runtime.PolicyHEFT).Plan(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster plan: %d tasks, makespan %.3gs, imbalance %.2f\n",
		len(sched.Assignments), sched.Makespan, sched.LoadImbalance())

	// 5. mARGOt selects the radiation variant per environment (§VI-C).
	knobs := []autotuner.Knob{{Name: "radiation", Values: []string{"cpu", "fpga"}}}
	points := []autotuner.OperatingPoint{
		{Config: autotuner.Config{"radiation": "cpu"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 240, autotuner.MetricEnergyJ: 80}},
		{Config: autotuner.Config{"radiation": "fpga"},
			Metrics: map[autotuner.Metric]float64{autotuner.MetricTimeMs: 32, autotuner.MetricEnergyJ: 18}},
	}
	at, err := autotuner.New(knobs, points,
		[]autotuner.Goal{{Metric: autotuner.MetricTimeMs, Op: autotuner.LE, Value: 300}},
		autotuner.Rank{Metric: autotuner.MetricEnergyJ, Minimize: true})
	if err != nil {
		log.Fatal(err)
	}
	sel := at.Select()
	fmt.Printf("autotuner: radiation variant = %s (%.0f ms, %.0f J)\n",
		sel.Config["radiation"], sel.Metrics[autotuner.MetricTimeMs], sel.Metrics[autotuner.MetricEnergyJ])
}
