// Traffic offload: run the paper's Fig. 4 map-matching pipeline as a
// ConDRust dataflow program over real stage implementations, then build
// the production workflow from the workload registry — the same dataflow
// graph as a runtime DAG whose offloaded projection stage is compiled
// source-to-schedule — and explore the compile-time CPU/FPGA placement of
// each stage across batch sizes (§VIII).
//
//	go run ./examples/trafficoffload
package main

import (
	"fmt"
	"log"

	"everest/internal/apps"
	"everest/internal/base2"
	"everest/internal/condrust"
	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/sdk"
	"everest/internal/traffic"
)

func main() {
	net := traffic.GridNetwork(8, 8, 200, 1)

	// 1. Parse the coordination program (Fig. 4) and build its dataflow.
	prog, err := condrust.Parse(traffic.Fig4Source)
	if err != nil {
		log.Fatal(err)
	}
	fn := prog.Find("match_one")
	graph, err := condrust.BuildGraph(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ConDRust graph: %d actors, depth %d, offload candidates: ",
		len(graph.Nodes), graph.CriticalPathLen())
	for _, n := range graph.OffloadCandidates() {
		fmt.Printf("%s (path=%s) ", n.Fn, n.Attr.Path)
	}
	fmt.Println()

	// 2. Execute the deterministic dataflow on a simulated trip.
	trace, err := traffic.SimulateTrip(net, 7, 10, 10, 80)
	if err != nil {
		log.Fatal(err)
	}
	reg := traffic.MatchActors(net, 60, 10, 30, 4)
	out, err := graph.Execute(reg, map[string]interface{}{
		"gv": trace.Points, "mapcell": struct{}{},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := out.(*traffic.MatchResult)
	fmt.Printf("map matching: %d GPS points, accuracy %.1f%%, %d road speeds observed\n",
		len(trace.Points), traffic.MatchAccuracy(net, trace, res)*100, len(res.RoadSpeeds))

	// 3. The production workflow comes from the workload registry: the
	// same dataflow graph as a runtime DAG, with the stage the program
	// marks #[kernel(offloaded = true)] compiled source-to-schedule.
	app, err := apps.Build("traffic", apps.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	c, _ := app.Kernel("projection")
	fmt.Printf("\nregistry : %s\n", app.Title)
	fmt.Printf("projection kernel %s -> bitstream %s (HLS: %s)\n",
		c.KernelName, c.Design.Bitstream.ID, c.Report.String())
	fmt.Println("variants : (derived from the HLS schedule + CPU cost model)")
	for _, row := range c.Summary() {
		fmt.Printf("  %s\n", row)
	}
	w := app.Workflow(0)
	fmt.Print("DAG      :")
	for _, name := range w.Tasks() {
		fmt.Printf(" %s", name)
	}
	fmt.Println()

	// 4. Compile-time placement exploration across batch sizes.
	fmt.Println("\nplacement exploration (daily batch size sweep):")
	for _, batch := range []int{10, 1000, 100000} {
		stages := []sdk.StageCost{
			{Name: "projection", Flops: traffic.StageFlops("projection", batch), Offloadable: true,
				Kernel: hls.Kernel{Name: "projection",
					Nest: hls.LoopNest{TripCounts: []int{batch, 40, 2000},
						Body: hls.OpMix{Adds: 4, Muls: 6, Divs: 1, Loads: 4, Stores: 1}},
					Format: base2.Float32{}},
				BytesIn: int64(batch) * 640, BytesOut: int64(batch) * 64},
			{Name: "build_trellis", Flops: traffic.StageFlops("build_trellis", batch), Offloadable: false},
			{Name: "viterbi", Flops: traffic.StageFlops("viterbi", batch), Offloadable: false},
			{Name: "interpolate", Flops: traffic.StageFlops("interpolate", batch), Offloadable: false},
		}
		ps, err := sdk.ExplorePlacement(stages, platform.XeonModel(), platform.AlveoU55C(), hls.VitisBackend{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %-7d:", batch)
		for _, p := range ps {
			fmt.Printf(" %s=%s", p.Stage, p.Target)
		}
		fmt.Println()
	}

	// 5. Emit the dfg-dialect module for the compilation flow.
	m, err := graph.EmitDFG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndfg module: %d nodes, %d channels (verified)\n",
		m.CountOps("dfg.node"), m.CountOps("dfg.channel"))
}
