// Traffic offload: run the paper's Fig. 4 map-matching pipeline as a
// ConDRust dataflow program over real stage implementations, then explore
// the compile-time CPU/FPGA placement of each stage (§VIII).
//
//	go run ./examples/trafficoffload
package main

import (
	"fmt"
	"log"

	"everest/internal/base2"
	"everest/internal/condrust"
	"everest/internal/hls"
	"everest/internal/platform"
	"everest/internal/sdk"
	"everest/internal/traffic"
)

func main() {
	net := traffic.GridNetwork(8, 8, 200, 1)

	// 1. Parse the coordination program (Fig. 4) and build its dataflow.
	prog, err := condrust.Parse(traffic.Fig4Source)
	if err != nil {
		log.Fatal(err)
	}
	fn := prog.Find("match_one")
	graph, err := condrust.BuildGraph(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ConDRust graph: %d actors, depth %d, offload candidates: ",
		len(graph.Nodes), graph.CriticalPathLen())
	for _, n := range graph.OffloadCandidates() {
		fmt.Printf("%s (path=%s) ", n.Fn, n.Attr.Path)
	}
	fmt.Println()

	// 2. Execute the deterministic dataflow on a simulated trip.
	trace, err := traffic.SimulateTrip(net, 7, 10, 10, 80)
	if err != nil {
		log.Fatal(err)
	}
	reg := traffic.MatchActors(net, 60, 10, 30, 4)
	out, err := graph.Execute(reg, map[string]interface{}{
		"gv": trace.Points, "mapcell": struct{}{},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := out.(*traffic.MatchResult)
	fmt.Printf("map matching: %d GPS points, accuracy %.1f%%, %d road speeds observed\n",
		len(trace.Points), traffic.MatchAccuracy(net, trace, res)*100, len(res.RoadSpeeds))

	// 3. Compile-time placement exploration across batch sizes.
	fmt.Println("\nplacement exploration (daily batch size sweep):")
	for _, batch := range []int{10, 1000, 100000} {
		stages := []sdk.StageCost{
			{Name: "projection", Flops: float64(batch) * 40 * 2000 * 12, Offloadable: true,
				Kernel: hls.Kernel{Name: "projection",
					Nest: hls.LoopNest{TripCounts: []int{batch, 40, 2000},
						Body: hls.OpMix{Adds: 4, Muls: 6, Divs: 1, Loads: 4, Stores: 1}},
					Format: base2.Float32{}},
				BytesIn: int64(batch) * 640, BytesOut: int64(batch) * 64},
			{Name: "build_trellis", Flops: float64(batch) * 40 * 640, Offloadable: false},
			{Name: "viterbi", Flops: float64(batch) * 40 * 64, Offloadable: false},
			{Name: "interpolate", Flops: float64(batch) * 320, Offloadable: false},
		}
		ps, err := sdk.ExplorePlacement(stages, platform.XeonModel(), platform.AlveoU55C(), hls.VitisBackend{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %-7d:", batch)
		for _, p := range ps {
			fmt.Printf(" %s=%s", p.Stage, p.Target)
		}
		fmt.Println()
	}

	// 4. Emit the dfg-dialect module for the compilation flow.
	m, err := graph.EmitDFG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndfg module: %d nodes, %d channels (verified)\n",
		m.CountOps("dfg.node"), m.CountOps("dfg.channel"))
}
