package everest_test

import (
	"testing"

	"everest/internal/base2"
	"everest/internal/hls"
	"everest/internal/netsim"
	"everest/internal/olympus"
	"everest/internal/platform"
	"everest/internal/wrf"
)

// Ablation benches for the design choices called out in DESIGN.md §6.

func streamBitstream(b *testing.B, dev *platform.Device, opt olympus.Options) platform.Bitstream {
	b.Helper()
	k := hls.Kernel{
		Name: "stream",
		Nest: hls.LoopNest{TripCounts: []int{1 << 18},
			Body: hls.OpMix{Adds: 2, Muls: 2, Loads: 2, Stores: 1}},
		Format: base2.Float32{},
	}
	d, err := olympus.Generate(k, hls.VitisBackend{}, dev, nil, opt)
	if err != nil {
		b.Fatal(err)
	}
	return d.Bitstream
}

// computeBitstream builds a compute-bound kernel (long trip count, small
// payload) so replication gains are visible.
func computeBitstream(b *testing.B, dev *platform.Device, opt olympus.Options) platform.Bitstream {
	b.Helper()
	k := hls.Kernel{
		Name: "mc",
		Nest: hls.LoopNest{TripCounts: []int{1 << 22},
			Body: hls.OpMix{Adds: 2, Muls: 2, Special: 1, Loads: 1}},
		Format: base2.Float32{},
	}
	d, err := olympus.Generate(k, hls.VitisBackend{}, dev, nil, opt)
	if err != nil {
		b.Fatal(err)
	}
	return d.Bitstream
}

// BenchmarkAblation_LanesVsWideBus — DESIGN.md §6.1: replicated kernels on
// lanes versus one shared wide bus, on a compute-bound kernel.
func BenchmarkAblation_LanesVsWideBus(b *testing.B) {
	dev := platform.AlveoU55C()
	wl := platform.Workload{BytesIn: 1 << 22, BytesOut: 1 << 22, Batches: 4}
	lanes := computeBitstream(b, dev, olympus.Options{Replicate: true, MaxReplicas: 8, PackData: true, DoubleBuffer: true})
	single := computeBitstream(b, dev, olympus.Options{PackData: true, DoubleBuffer: true})
	var thrLanes, thrSingle float64
	for i := 0; i < b.N; i++ {
		tl1, err := platform.Execute(dev, lanes, wl)
		if err != nil {
			b.Fatal(err)
		}
		tl2, err := platform.Execute(dev, single, wl)
		if err != nil {
			b.Fatal(err)
		}
		thrLanes = platform.Throughput(wl, tl1) / 1e9
		thrSingle = platform.Throughput(wl, tl2) / 1e9
	}
	b.ReportMetric(thrLanes, "lanes_GBs")
	b.ReportMetric(thrSingle, "single_GBs")
	b.ReportMetric(thrLanes/thrSingle, "lane_gain")
}

// BenchmarkAblation_DoubleBufferBatches — DESIGN.md §6.2: overlap factor
// versus batch count.
func BenchmarkAblation_DoubleBufferBatches(b *testing.B) {
	dev := platform.AlveoU55C()
	dbl := streamBitstream(b, dev, olympus.Options{DoubleBuffer: true, PackData: true})
	seq := streamBitstream(b, dev, olympus.Options{PackData: true})
	var gain16 float64
	for i := 0; i < b.N; i++ {
		wl := platform.Workload{BytesIn: 1 << 27, BytesOut: 1 << 27, Batches: 16}
		t1, err := platform.Execute(dev, dbl, wl)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := platform.Execute(dev, seq, wl)
		if err != nil {
			b.Fatal(err)
		}
		gain16 = t2.Total / t1.Total
	}
	b.ReportMetric(gain16, "overlap_gain_16batches")
}

// BenchmarkAblation_AttachmentCrossover — DESIGN.md §6.7: PCIe-attached vs
// network-attached FPGA as the compute-per-byte ratio grows.
func BenchmarkAblation_AttachmentCrossover(b *testing.B) {
	u55c := platform.AlveoU55C()
	cloud := platform.CloudFPGA()
	opt := olympus.Options{Replicate: true, MaxReplicas: 4, PackData: true, DoubleBuffer: true}
	bsPcie := streamBitstream(b, u55c, opt)
	bsCloud := streamBitstream(b, cloud, opt)
	var ratioSmall, ratioLarge float64
	for i := 0; i < b.N; i++ {
		// Transfer-heavy: many bytes per unit compute.
		wlT := platform.Workload{BytesIn: 1 << 28, BytesOut: 1 << 28, Batches: 4}
		p1, err := platform.Execute(u55c, bsPcie, wlT)
		if err != nil {
			b.Fatal(err)
		}
		c1, err := platform.Execute(cloud, bsCloud, wlT)
		if err != nil {
			b.Fatal(err)
		}
		ratioSmall = c1.Total / p1.Total
		// Compute-heavy: few bytes.
		wlC := platform.Workload{BytesIn: 1 << 16, BytesOut: 1 << 12, Batches: 1}
		p2, err := platform.Execute(u55c, bsPcie, wlC)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := platform.Execute(cloud, bsCloud, wlC)
		if err != nil {
			b.Fatal(err)
		}
		ratioLarge = c2.Total / p2.Total
	}
	// ratioSmall >> 1 (10G link hurts); ratioLarge -> ~1 (compute bound).
	b.ReportMetric(ratioSmall, "cloud_over_pcie_transfer_heavy")
	b.ReportMetric(ratioLarge, "cloud_over_pcie_compute_heavy")
}

// BenchmarkAblation_DistributedEnsemble — ZRLMPI strong scaling of the
// ensemble across network-attached ranks.
func BenchmarkAblation_DistributedEnsemble(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		table, err := wrf.ScalingTable(16, 1<<22, 0.05, 10, 16)
		if err != nil {
			b.Fatal(err)
		}
		speedup = table[0].Total / table[len(table)-1].Total
	}
	b.ReportMetric(speedup, "speedup_16ranks")
	_ = netsim.UDP10G()
}
