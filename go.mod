module everest

go 1.24
