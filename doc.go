// Package everest is a from-scratch Go reproduction of the EVEREST System
// Development Kit ("A System Development Kit for Big Data Applications on
// FPGA-based Clusters: The EVEREST Approach", DATE 2024, arXiv:2402.12612).
//
// The module implements the SDK's three pillars over a simulated FPGA
// substrate (see DESIGN.md for the system inventory and the substitution
// table, and EXPERIMENTS.md for the reproduced claims):
//
//   - the data-driven compilation framework: the EVEREST Kernel Language
//     (internal/ekl), the ConDRust coordination language
//     (internal/condrust), the ML-model entry point (internal/onnxlite),
//     the MLIR dialect stack (internal/mlir, internal/mlir/dialects),
//     custom number formats (internal/base2), HLS scheduling
//     (internal/hls), Olympus system generation (internal/olympus), and
//     the closed compile loop (internal/variants) that turns any of those
//     sources into a bitstream plus derived cpu1/cpu16/fpga operating
//     points — nothing on the accelerated path carries a hand-declared
//     latency;
//   - the virtualized runtime environment, three serving tiers deep:
//     the concurrent multi-tenant engine with adaptive variant-aware
//     placement (internal/runtime, fronted by internal/sdk.Server), the
//     federation tier routing workflows across engine sites with bounded
//     LRU bitstream caches and deploy pricing (internal/fleet, fronted by
//     sdk.FleetServer), and the streaming tier serving long-lived
//     windowed pipelines with shed-or-block backpressure and kernels
//     resident in FPGA partial-reconfiguration regions (internal/stream,
//     fronted by sdk.StreamServer) — all over the platform models
//     (internal/platform, internal/netsim), SR-IOV virtualization
//     (internal/virt), and the mARGOt autotuner (internal/autotuner);
//   - the anomaly detection service (internal/anomaly) with TPE AutoML.
//
// The four driving use cases are implemented as workloads — WRF-style
// weather simulation (internal/wrf), renewable-energy prediction
// (internal/energy), air-quality monitoring (internal/airquality), and
// traffic modeling (internal/traffic) — and registered as multi-stage
// DAG applications with compiled per-stage bitstreams (internal/apps),
// served through the fleet tier as the mixed E-apps suite and through
// the streaming tier as the million-event E-stream feed.
//
// Everything runs in modelled time: deterministic across GOMAXPROCS
// (byte-identical trace streams, enforced under -race), allocation-free
// on the per-event hot paths (enforced by testing.AllocsPerRun budgets),
// and fast enough to sweep million-event scenarios in seconds. CI gates
// the headline metrics of every tier against committed BENCH_*.json
// baselines via cmd/benchgate.
//
// Entry points: the basecamp CLI (cmd/basecamp — compile, deploy,
// serve [-sites N | -stream], adapt, anomaly, bench), the experiment
// and serving harnesses (cmd/everest-bench — E1-E14 tables, -saturate,
// -stream), the bench-regression gate (cmd/benchgate), and the runnable
// examples under examples/.
package everest
