// Package everest is a from-scratch Go reproduction of the EVEREST System
// Development Kit ("A System Development Kit for Big Data Applications on
// FPGA-based Clusters: The EVEREST Approach", DATE 2024, arXiv:2402.12612).
//
// The module implements the SDK's three pillars over a simulated FPGA
// substrate (see DESIGN.md for the system inventory and the substitution
// table, and EXPERIMENTS.md for the reproduced claims):
//
//   - the data-driven compilation framework: the EVEREST Kernel Language
//     (internal/ekl), the ConDRust coordination language
//     (internal/condrust), the MLIR dialect stack (internal/mlir,
//     internal/mlir/dialects), custom number formats (internal/base2), HLS
//     scheduling (internal/hls) and Olympus system generation
//     (internal/olympus);
//   - the virtualized runtime environment: platform models and per-node
//     monitors (internal/platform, internal/netsim), the Dask-like
//     resource manager with a serial HEFT planner and a concurrent
//     multi-tenant execution engine whose adaptive mode closes the
//     autotuner→engine→virt loop — per-workflow variant tuners, learned
//     node load, and SR-IOV hot-plug events driving placement
//     (internal/runtime), the multi-workflow submission server
//     (internal/sdk.Server, exposed as `basecamp serve [-adaptive]` and
//     `basecamp adapt`), SR-IOV virtualization with hot-plug notifications
//     (internal/virt), and the mARGOt autotuner (internal/autotuner);
//   - the anomaly detection service (internal/anomaly) with TPE AutoML.
//
// The four driving use cases are implemented as workloads: WRF-style
// weather simulation (internal/wrf), renewable-energy prediction
// (internal/energy), air-quality monitoring (internal/airquality), and
// traffic modeling (internal/traffic).
//
// Entry points: the basecamp CLI (cmd/basecamp), the experiment harness
// (cmd/everest-bench), and the runnable examples under examples/.
package everest
